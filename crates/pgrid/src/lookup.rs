//! Exact-key lookup and insert routing.
//!
//! Greedy prefix routing (paper §2): at each peer the key either matches
//! the local path — resolve locally — or differs first at bit `l`, in
//! which case the peer forwards to one of its level-`l` references. Each
//! hop extends the matched prefix by at least one bit, bounding the hop
//! count by the trie depth, i.e. O(log N) for a balanced overlay.

use unistore_simnet::NodeId;
use unistore_util::{ItemFilter, Key};

use crate::item::{Item, Version};
use crate::msg::{PGridEvent, PGridMsg, QueryId};
use crate::peer::{Fx, PGridPeer, Pending};
use crate::routing::RouteDecision;

impl<I: Item> PGridPeer<I> {
    /// Handles a routed lookup. `from == EXTERNAL` marks driver
    /// injection at the origin, which registers completion tracking.
    /// The leaf applies `filter` (semi-join pushdown) before answering.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_lookup(
        &mut self,
        from: NodeId,
        qid: QueryId,
        key: Key,
        origin: NodeId,
        hops: u32,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        if from == NodeId::EXTERNAL && origin == self.id {
            self.register_pending(
                fx,
                qid,
                Pending::Lookup { key, attempts: 0, last_hop: None, filter: filter.clone() },
            );
            self.issue_lookup(qid, key, None, filter, fx);
            return;
        }
        // Reads route load-aware: the least-dispatched ref at the
        // needed level, so hot keys spread across the replica group of
        // the responsible subtree instead of hammering one peer.
        match self.routing.route_read(key, None) {
            RouteDecision::Local => {
                let items = ItemFilter::collect_filtered(&filter, self.store.iter_key(key));
                self.answer_lookup(qid, origin, items, hops, true, fx);
            }
            RouteDecision::Forward(next, _) => {
                fx.send(next, PGridMsg::Lookup { qid, key, origin, hops: hops + 1, filter });
            }
            RouteDecision::Stuck(_) => {
                self.answer_lookup(qid, origin, Vec::new(), hops, false, fx);
            }
        }
    }

    /// Starts (or retries) an origin-side lookup attempt, routing around
    /// `avoid` — the first hop of the previous, failed attempt.
    pub(crate) fn issue_lookup(
        &mut self,
        qid: QueryId,
        key: Key,
        avoid: Option<NodeId>,
        filter: Option<ItemFilter>,
        fx: &mut Fx<I>,
    ) {
        match self.routing.route_read(key, avoid) {
            RouteDecision::Local => {
                let items = ItemFilter::collect_filtered(&filter, self.store.iter_key(key));
                self.handle_lookup_reply(qid, items, 0, true, fx);
            }
            RouteDecision::Forward(next, _) => {
                if let Some(Pending::Lookup { last_hop, .. }) = self.pending.get_mut(&qid) {
                    *last_hop = Some(next);
                }
                fx.send(next, PGridMsg::Lookup { qid, key, origin: self.id, hops: 1, filter });
            }
            RouteDecision::Stuck(_) => {
                // Report the routing hole; the reply handler consumes a
                // retry per explicit failure, so remaining attempts run
                // synchronously and a true dead end still fails fast
                // instead of burning timeout rounds. (Writes differ on
                // purpose: a stuck insert/delete waits for its timeout
                // because maintenance may repair the level, and a
                // spurious failure report for a write is worse than a
                // late one.)
                self.handle_lookup_reply(qid, Vec::new(), 0, false, fx);
            }
        }
    }

    fn answer_lookup(
        &mut self,
        qid: QueryId,
        origin: NodeId,
        items: Vec<I>,
        hops: u32,
        ok: bool,
        fx: &mut Fx<I>,
    ) {
        if origin == self.id {
            // Resolved at the origin itself — no network reply needed.
            self.handle_lookup_reply(qid, items, hops, ok, fx);
        } else {
            fx.send(origin, PGridMsg::LookupReply { qid, items, hops, ok });
        }
    }

    /// Completes a pending lookup at the origin. An explicit failure
    /// (a routing hole reported by this or a downstream peer) consumes a
    /// retry and re-routes around the failed first hop instead of
    /// failing the op while alternatives remain; the timeout timer armed
    /// at registration still bounds the whole op.
    pub(crate) fn handle_lookup_reply(
        &mut self,
        qid: QueryId,
        items: Vec<I>,
        hops: u32,
        ok: bool,
        fx: &mut Fx<I>,
    ) {
        if !ok {
            if let Some(Pending::Lookup { key, attempts, last_hop, filter }) =
                self.pending.get_mut(&qid)
            {
                if *attempts < self.cfg.op_retries {
                    *attempts += 1;
                    let (key, avoid, filter) = (*key, *last_hop, filter.clone());
                    self.issue_lookup(qid, key, avoid, filter, fx);
                    return;
                }
            }
        }
        if self.pending.remove(&qid).is_some() {
            fx.emit(PGridEvent::LookupDone { qid, items, hops, ok });
        }
    }

    /// Handles a routed insert; applied and replicated at the leaf.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_insert(
        &mut self,
        from: NodeId,
        qid: QueryId,
        key: Key,
        item: I,
        version: Version,
        origin: NodeId,
        hops: u32,
        fx: &mut Fx<I>,
    ) {
        if from == NodeId::EXTERNAL && origin == self.id {
            self.register_pending(
                fx,
                qid,
                Pending::Insert { key, item: item.clone(), version, attempts: 0, last_hop: None },
            );
            self.issue_insert(qid, key, item, version, None, fx);
            return;
        }
        match self.routing.route(key, &mut self.rng) {
            RouteDecision::Local => {
                self.insert_at_leaf(key, item, version, fx);
                if origin == self.id {
                    self.handle_insert_ack(qid, hops, fx);
                } else {
                    fx.send(origin, PGridMsg::InsertAck { qid, hops });
                }
            }
            RouteDecision::Forward(next, _) => {
                fx.send(next, PGridMsg::Insert { qid, key, item, version, origin, hops: hops + 1 });
            }
            RouteDecision::Stuck(_) => {
                // Leave the pending op to its timeout: an unreachable
                // leaf is indistinguishable from loss for the origin.
            }
        }
    }

    /// Applies an insert at the responsible leaf and pushes the change
    /// to the replica group when it was new.
    pub(crate) fn insert_at_leaf(&mut self, key: Key, item: I, version: Version, fx: &mut Fx<I>) {
        let changed = self.store.apply(key, item.clone(), version);
        if changed {
            self.push_to_replicas(key, version, item, fx);
        }
    }

    /// Starts (or retries) an origin-side insert attempt.
    pub(crate) fn issue_insert(
        &mut self,
        qid: QueryId,
        key: Key,
        item: I,
        version: Version,
        avoid: Option<NodeId>,
        fx: &mut Fx<I>,
    ) {
        match self.routing.route_excluding(key, avoid, &mut self.rng) {
            RouteDecision::Local => {
                self.insert_at_leaf(key, item, version, fx);
                self.handle_insert_ack(qid, 0, fx);
            }
            RouteDecision::Forward(next, _) => {
                if let Some(Pending::Insert { last_hop, .. }) = self.pending.get_mut(&qid) {
                    *last_hop = Some(next);
                }
                fx.send(
                    next,
                    PGridMsg::Insert { qid, key, item, version, origin: self.id, hops: 1 },
                );
            }
            RouteDecision::Stuck(_) => {
                // Leave the pending op to its timeout (and retries).
            }
        }
    }

    /// Completes a pending insert at the origin.
    pub(crate) fn handle_insert_ack(&mut self, qid: QueryId, hops: u32, fx: &mut Fx<I>) {
        if self.pending.remove(&qid).is_some() {
            fx.emit(PGridEvent::InsertDone { qid, hops, ok: true });
        }
    }

    /// Handles a routed delete (index maintenance for updates); the
    /// removal propagates once through the replica group.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_delete(
        &mut self,
        from: NodeId,
        qid: QueryId,
        key: Key,
        ident: u64,
        version: Version,
        origin: NodeId,
        hops: u32,
        fx: &mut Fx<I>,
    ) {
        if from == NodeId::EXTERNAL && origin == self.id {
            self.register_pending(
                fx,
                qid,
                Pending::Delete { key, ident, version, attempts: 0, last_hop: None },
            );
            self.issue_delete(qid, key, ident, version, None, fx);
            return;
        }
        match self.routing.route(key, &mut self.rng) {
            RouteDecision::Local => {
                self.delete_at_leaf(key, ident, version, hops, fx);
                if origin == self.id {
                    self.handle_insert_ack(qid, hops, fx);
                } else if qid != 0 {
                    fx.send(origin, PGridMsg::InsertAck { qid, hops });
                }
            }
            RouteDecision::Forward(next, _) => {
                fx.send(
                    next,
                    PGridMsg::Delete { qid, key, ident, version, origin, hops: hops + 1 },
                );
            }
            RouteDecision::Stuck(_) => {}
        }
    }

    /// Applies a delete at the responsible leaf; when something was
    /// removed, propagates once through the replica group (replicas that
    /// remove nothing stop the cascade).
    pub(crate) fn delete_at_leaf(
        &mut self,
        key: Key,
        ident: u64,
        version: Version,
        hops: u32,
        fx: &mut Fx<I>,
    ) {
        let removed = self.store.remove(key, ident, version);
        if removed {
            for &r in self.routing.replicas() {
                fx.send(r, PGridMsg::Delete { qid: 0, key, ident, version, origin: self.id, hops });
            }
        }
    }

    /// Starts (or retries) an origin-side delete attempt.
    pub(crate) fn issue_delete(
        &mut self,
        qid: QueryId,
        key: Key,
        ident: u64,
        version: Version,
        avoid: Option<NodeId>,
        fx: &mut Fx<I>,
    ) {
        match self.routing.route_excluding(key, avoid, &mut self.rng) {
            RouteDecision::Local => {
                self.delete_at_leaf(key, ident, version, 0, fx);
                self.handle_insert_ack(qid, 0, fx);
            }
            RouteDecision::Forward(next, _) => {
                if let Some(Pending::Delete { last_hop, .. }) = self.pending.get_mut(&qid) {
                    *last_hop = Some(next);
                }
                fx.send(
                    next,
                    PGridMsg::Delete { qid, key, ident, version, origin: self.id, hops: 1 },
                );
            }
            RouteDecision::Stuck(_) => {
                // Leave the pending op to its timeout (and retries).
            }
        }
    }
}

#[cfg(test)]
mod tests {
    //! Handler-level tests on a hand-built two-peer topology; full
    //! network behaviour is covered in `cluster.rs` tests.

    use super::*;
    use crate::config::PGridConfig;
    use crate::item::RawItem;
    use crate::msg::PeerRef;
    use unistore_simnet::Effects;
    use unistore_util::BitPath;

    fn peer(id: u32, path: &str) -> PGridPeer<RawItem> {
        PGridPeer::new(NodeId(id), BitPath::parse(path).unwrap(), PGridConfig::default(), 42)
    }

    #[test]
    fn local_lookup_emits_directly() {
        let mut p = peer(0, "0");
        let key = 0u64; // starts with 0 → local
        p.preload(key, RawItem(9), 0);
        let mut fx = Effects::new();
        p.handle_lookup(NodeId::EXTERNAL, 1, key, NodeId(0), 0, None, &mut fx);
        assert_eq!(fx.sends().len(), 0);
        assert_eq!(fx.emits().len(), 1);
        match &fx.emits()[0] {
            PGridEvent::LookupDone { qid, items, hops, ok } => {
                assert_eq!(*qid, 1);
                assert_eq!(items, &[RawItem(9)]);
                assert_eq!(*hops, 0);
                assert!(ok);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn foreign_key_forwards_with_hop_increment() {
        let mut p = peer(0, "0");
        p.routing_mut().add_ref(PeerRef { id: NodeId(1), path: BitPath::parse("1").unwrap() });
        let key = 1u64 << 63; // starts with 1
        let mut fx = Effects::new();
        p.handle_lookup(NodeId::EXTERNAL, 7, key, NodeId(0), 0, None, &mut fx);
        assert_eq!(fx.emits().len(), 0);
        assert_eq!(fx.sends().len(), 1);
        let (to, msg) = &fx.sends()[0];
        assert_eq!(*to, NodeId(1));
        match msg {
            PGridMsg::Lookup { qid: 7, hops: 1, .. } => {}
            other => panic!("unexpected forward {other:?}"),
        }
        // Pending registered → timeout timer armed.
        assert_eq!(fx.timers().len(), 1);
    }

    #[test]
    fn stuck_routing_reports_failure() {
        let mut p = peer(0, "0");
        let key = 1u64 << 63;
        let mut fx = Effects::new();
        p.handle_lookup(NodeId::EXTERNAL, 3, key, NodeId(0), 0, None, &mut fx);
        // Origin is self → failure emitted, not sent.
        assert_eq!(fx.emits().len(), 1);
        match &fx.emits()[0] {
            PGridEvent::LookupDone { ok: false, .. } => {}
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn relayed_lookup_replies_to_origin() {
        let mut p = peer(5, "1");
        let key = 1u64 << 63;
        p.preload(key, RawItem(4), 0);
        let mut fx = Effects::new();
        p.handle_lookup(NodeId(2), 11, key, NodeId(9), 3, None, &mut fx);
        assert_eq!(fx.sends().len(), 1);
        let (to, msg) = &fx.sends()[0];
        assert_eq!(*to, NodeId(9));
        match msg {
            PGridMsg::LookupReply { qid: 11, items, hops: 3, ok: true } => {
                assert_eq!(items, &[RawItem(4)]);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn insert_applies_and_replicates_at_leaf() {
        let mut p = peer(0, "0");
        p.routing_mut().add_replica(NodeId(8));
        let key = 0u64;
        let mut fx = Effects::new();
        p.handle_insert(NodeId::EXTERNAL, 2, key, RawItem(1), 0, NodeId(0), 0, &mut fx);
        assert_eq!(p.store().get(key), vec![RawItem(1)]);
        // One replicate push + zero acks on the wire (origin = self).
        let pushes: Vec<_> =
            fx.sends().iter().filter(|(_, m)| matches!(m, PGridMsg::Replicate { .. })).collect();
        assert_eq!(pushes.len(), 1);
        assert_eq!(pushes[0].0, NodeId(8));
        assert_eq!(fx.emits().len(), 1);
    }

    #[test]
    fn duplicate_insert_does_not_replicate_again() {
        let mut p = peer(0, "0");
        p.routing_mut().add_replica(NodeId(8));
        let key = 0u64;
        let mut fx = Effects::new();
        p.handle_insert(NodeId(3), 2, key, RawItem(1), 0, NodeId(3), 0, &mut fx);
        let mut fx2 = Effects::new();
        p.handle_insert(NodeId(3), 3, key, RawItem(1), 0, NodeId(3), 0, &mut fx2);
        let pushes2 =
            fx2.sends().iter().filter(|(_, m)| matches!(m, PGridMsg::Replicate { .. })).count();
        assert_eq!(pushes2, 0, "unchanged store must not push");
    }

    #[test]
    fn filtered_lookup_drops_non_matches_at_the_leaf() {
        use unistore_util::bloom::BloomFilter;
        use unistore_util::wire::Wire;

        /// Item exposing its payload as field 0 for semi-join tests.
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct F(u64);
        impl Wire for F {
            fn encode(&self, buf: &mut bytes::BytesMut) {
                self.0.encode(buf);
            }
            fn decode(buf: &mut bytes::Bytes) -> Result<Self, unistore_util::wire::WireError> {
                Ok(F(u64::decode(buf)?))
            }
        }
        impl Item for F {
            fn ident(&self) -> u64 {
                self.0
            }
            fn field_hash(&self, field: u8) -> Option<u64> {
                (field == 0).then_some(self.0)
            }
        }

        let mut p = PGridPeer::new(
            NodeId(0),
            unistore_util::BitPath::parse("0").unwrap(),
            crate::config::PGridConfig::default(),
            42,
        );
        let key = 0u64;
        p.preload(key, F(1), 0);
        p.preload(key, F(2), 0);
        p.preload(key, F(3), 0);
        let filter = ItemFilter { field: 0, bloom: BloomFilter::from_hashes([1u64, 3], 0.001) };
        let mut fx = Effects::new();
        p.handle_lookup(NodeId::EXTERNAL, 1, key, NodeId(0), 0, Some(filter), &mut fx);
        match &fx.emits()[0] {
            PGridEvent::LookupDone { items, ok: true, .. } => {
                // 2 is definitely absent from the filter; 1 and 3 must
                // survive (no false negatives).
                assert!(items.contains(&F(1)) && items.contains(&F(3)));
                assert!(!items.contains(&F(2)));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn unknown_reply_ignored() {
        let mut p = peer(0, "0");
        let mut fx = Effects::new();
        p.handle_lookup_reply(999, vec![RawItem(0)], 1, true, &mut fx);
        assert!(fx.is_empty());
    }
}

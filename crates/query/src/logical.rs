//! The logical algebra and its construction from analyzed VQL.

use std::sync::Arc;

use unistore_vql::ast::{OrderItem, SkyItem};
use unistore_vql::{AnalyzedQuery, Expr, TriplePattern};

/// A logical plan node (π, σ, ⋈ plus ranking/similarity extensions —
/// paper §2).
#[derive(Clone, Debug, PartialEq)]
pub enum Logical {
    /// Leaf: one triple pattern to resolve against the distributed
    /// storage.
    Pattern(TriplePattern),
    /// Natural join on shared variables.
    Join {
        /// Left input.
        left: Box<Logical>,
        /// Right input.
        right: Box<Logical>,
    },
    /// Selection.
    Filter {
        /// Input.
        input: Box<Logical>,
        /// Predicate.
        expr: Expr,
    },
    /// Projection.
    Project {
        /// Input.
        input: Box<Logical>,
        /// Variables to keep.
        vars: Vec<Arc<str>>,
    },
    /// Sorting.
    OrderBy {
        /// Input.
        input: Box<Logical>,
        /// Sort items.
        items: Vec<OrderItem>,
    },
    /// Truncation.
    Limit {
        /// Input.
        input: Box<Logical>,
        /// Row budget.
        n: usize,
    },
    /// Ranking: sort + truncate as one operator.
    TopN {
        /// Input.
        input: Box<Logical>,
        /// Sort items.
        items: Vec<OrderItem>,
        /// Rank budget.
        n: usize,
    },
    /// Pareto skyline.
    Skyline {
        /// Input.
        input: Box<Logical>,
        /// Preference items.
        items: Vec<SkyItem>,
    },
}

impl Logical {
    /// Builds the canonical plan for an analyzed query: left-deep join
    /// tree in pattern order, filters above, then skyline → order/top-N
    /// → limit → projection. (The optimizer reorders joins and pushes
    /// filters into scans later — this is the *semantic* shape.)
    pub fn from_query(a: &AnalyzedQuery) -> Logical {
        let q = &a.query;
        let mut plan = Logical::Pattern(q.patterns[0].clone());
        for p in &q.patterns[1..] {
            plan = Logical::Join {
                left: Box::new(plan),
                right: Box::new(Logical::Pattern(p.clone())),
            };
        }
        for f in &q.filters {
            plan = Logical::Filter { input: Box::new(plan), expr: f.clone() };
        }
        if !q.skyline.is_empty() {
            plan = Logical::Skyline { input: Box::new(plan), items: q.skyline.clone() };
        }
        if let Some(n) = q.top {
            plan = Logical::TopN { input: Box::new(plan), items: q.order_by.clone(), n };
        } else if !q.order_by.is_empty() {
            plan = Logical::OrderBy { input: Box::new(plan), items: q.order_by.clone() };
        }
        if let Some(n) = q.limit {
            plan = Logical::Limit { input: Box::new(plan), n };
        }
        Logical::Project { input: Box::new(plan), vars: a.projection.clone() }
    }

    /// All pattern leaves, left to right.
    pub fn patterns(&self) -> Vec<&TriplePattern> {
        let mut out = Vec::new();
        self.walk_patterns(&mut out);
        out
    }

    fn walk_patterns<'a>(&'a self, out: &mut Vec<&'a TriplePattern>) {
        match self {
            Logical::Pattern(p) => out.push(p),
            Logical::Join { left, right } => {
                left.walk_patterns(out);
                right.walk_patterns(out);
            }
            Logical::Filter { input, .. }
            | Logical::Project { input, .. }
            | Logical::OrderBy { input, .. }
            | Logical::Limit { input, .. }
            | Logical::TopN { input, .. }
            | Logical::Skyline { input, .. } => input.walk_patterns(out),
        }
    }

    /// Number of operators in the plan (diagnostics).
    pub fn size(&self) -> usize {
        match self {
            Logical::Pattern(_) => 1,
            Logical::Join { left, right } => 1 + left.size() + right.size(),
            Logical::Filter { input, .. }
            | Logical::Project { input, .. }
            | Logical::OrderBy { input, .. }
            | Logical::Limit { input, .. }
            | Logical::TopN { input, .. }
            | Logical::Skyline { input, .. } => 1 + input.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_vql::{analyze, parse};

    fn plan(src: &str) -> Logical {
        Logical::from_query(&analyze(parse(src).unwrap()).unwrap())
    }

    #[test]
    fn single_pattern_shape() {
        let p = plan("SELECT ?n WHERE {(?a,'name',?n)}");
        match p {
            Logical::Project { input, vars } => {
                assert_eq!(vars.len(), 1);
                assert!(matches!(*input, Logical::Pattern(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_query_shape() {
        let p = plan(
            "SELECT ?name,?age,?cnt
             WHERE {(?a,'name',?name) (?a,'age',?age)
                    (?a,'num_of_pubs',?cnt)
                    (?a,'has_published',?title) (?p,'title',?title)
                    (?p,'published_in',?conf) (?c,'confname',?conf)
                    (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}
             ORDER BY SKYLINE OF ?age MIN, ?cnt MAX",
        );
        assert_eq!(p.patterns().len(), 8);
        // Project → Skyline → Filter → left-deep joins.
        match p {
            Logical::Project { input, .. } => match *input {
                Logical::Skyline { input, items } => {
                    assert_eq!(items.len(), 2);
                    assert!(matches!(*input, Logical::Filter { .. }));
                }
                other => panic!("expected skyline, got {other:?}"),
            },
            other => panic!("expected project, got {other:?}"),
        }
    }

    #[test]
    fn top_replaces_order() {
        let p = plan("SELECT ?n WHERE {(?a,'age',?n)} ORDER BY ?n TOP 5");
        match p {
            Logical::Project { input, .. } => {
                assert!(matches!(*input, Logical::TopN { n: 5, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn limit_wraps_order() {
        let p = plan("SELECT ?n WHERE {(?a,'age',?n)} ORDER BY ?n LIMIT 3");
        match p {
            Logical::Project { input, .. } => match *input {
                Logical::Limit { input, n: 3 } => {
                    assert!(matches!(*input, Logical::OrderBy { .. }));
                }
                other => panic!("expected limit, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn size_counts_operators() {
        let p = plan("SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g)}");
        // project + join + 2 patterns = 4
        assert_eq!(p.size(), 4);
    }
}

//! Ranking operators: ORDER BY and top-N.

use unistore_vql::ast::{OrderItem, SortDir};

use crate::relation::Relation;

/// Sorts a relation by the given items (stable, in item priority order).
pub fn order_by(rel: &mut Relation, items: &[OrderItem]) {
    let cols: Vec<(usize, SortDir)> =
        items.iter().filter_map(|o| rel.col(&o.var).map(|c| (c, o.dir))).collect();
    rel.rows.sort_by(|a, b| {
        for &(c, dir) in &cols {
            let ord = a[c].cmp_values(&b[c]);
            let ord = if dir == SortDir::Desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Truncates to the first `n` rows.
pub fn limit(rel: &mut Relation, n: usize) {
    rel.rows.truncate(n);
}

/// Top-N: sort then truncate (the paper's ranking operator).
pub fn top_n(rel: &mut Relation, items: &[OrderItem], n: usize) {
    order_by(rel, items);
    limit(rel, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unistore_store::Value;

    fn rel() -> Relation {
        Relation {
            schema: vec![Arc::from("n"), Arc::from("y")],
            rows: vec![
                vec![Value::str("b"), Value::Int(2006)],
                vec![Value::str("a"), Value::Int(2005)],
                vec![Value::str("c"), Value::Int(2005)],
            ],
        }
    }

    fn item(var: &str, dir: SortDir) -> OrderItem {
        OrderItem { var: Arc::from(var), dir }
    }

    #[test]
    fn sort_asc_then_tiebreak() {
        let mut r = rel();
        order_by(&mut r, &[item("y", SortDir::Asc), item("n", SortDir::Asc)]);
        let names: Vec<_> = r.rows.iter().map(|row| row[0].clone()).collect();
        assert_eq!(names, vec![Value::str("a"), Value::str("c"), Value::str("b")]);
    }

    #[test]
    fn sort_desc() {
        let mut r = rel();
        order_by(&mut r, &[item("y", SortDir::Desc)]);
        assert_eq!(r.rows[0][1], Value::Int(2006));
    }

    #[test]
    fn top_n_truncates_after_sort() {
        let mut r = rel();
        top_n(&mut r, &[item("y", SortDir::Asc), item("n", SortDir::Asc)], 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[1][0], Value::str("c"));
    }

    #[test]
    fn limit_beyond_len_is_noop() {
        let mut r = rel();
        limit(&mut r, 10);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn missing_sort_var_ignored() {
        let mut r = rel();
        order_by(&mut r, &[item("ghost", SortDir::Asc)]);
        assert_eq!(r.len(), 3);
    }
}

//! Query processing for UniStore.
//!
//! Paper §2: *"The algebra supports traditional 'relational' operators
//! (π, σ, ⋈, …) as well as special operators needed to query the
//! distributed triple storage … we extend the set of operators by special
//! operators like similarity operators (e.g., similarity join) and
//! ranking operators (e.g., top-N, skyline). … For each logical operator
//! there are several physical implementations available … The processing
//! of these plans can be described as an extension of the concept of
//! Mutant Query Plans. For each physical operator, and thus, for each
//! query plan, we can determine worst-case guarantees (almost all are
//! logarithmic) and predict exact costs. … resulting in an adaptive
//! query processing approach."*
//!
//! Layout:
//!
//! * [`relation`] — the tabular intermediate representation flowing
//!   through plans (wire-encodable: mutant plans carry their partial
//!   results),
//! * [`eval`] — filter-expression evaluation over rows,
//! * [`logical`] — translation of analyzed VQL into the logical algebra,
//! * [`strategy`] — the physical operator alternatives per logical
//!   operator (scans, joins, similarity),
//! * [`cost`] — the cost model: overlay guarantees + data statistics →
//!   predicted messages/hops/bytes per plan,
//! * [`mqp`] — the Mutant Query Plan tree that travels between peers,
//! * [`rank`] — ORDER BY / top-N, [`skyline`] — skyline (BNL),
//! * [`local`] — a fully local reference engine (oracle for tests and
//!   the executor's per-peer pipeline finisher).

pub mod cost;
pub mod eval;
pub mod local;
pub mod logical;
pub mod mqp;
pub mod rank;
pub mod relation;
pub mod skyline;
pub mod strategy;

pub use cost::{CostModel, CostVector, GlobalStats, StatsDelta};
pub use local::LocalEngine;
pub use logical::Logical;
pub use mqp::{Coverage, Mqp, MqpNode};
pub use relation::Relation;
pub use strategy::{JoinStrategy, RangeAlgo, ScanStrategy};

//! Mutant Query Plans.
//!
//! Paper §2: *"The physical operators are used to build complex query
//! plans. The processing of these plans can be described as an extension
//! of the concept of Mutant Query Plans [7]"* (Papadimos & Maier). The
//! plan is *data*: it travels between peers inside messages, and as
//! leaves are resolved at the peers responsible for the data, sub-trees
//! collapse into materialized relations. Every peer holding the plan
//! re-optimizes what remains before acting — that is the paper's
//! "adaptive query processing".
//!
//! The tree is wire-encodable (plans ship with their partial results),
//! and evaluation of fully materialized operators is a pure function
//! shared with the local reference engine.

use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use unistore_store::mapping::MappingSet;
use unistore_store::{Triple, Value};
use unistore_util::wire::{Wire, WireError};
use unistore_vql::ast::{OrderItem, SkyItem};
use unistore_vql::{Expr, Term, TriplePattern};

use crate::eval::filter_relation;
use crate::logical::Logical;
use crate::rank::{limit, order_by, top_n};
use crate::relation::Relation;
use crate::skyline::skyline;

/// One node of a mutant query plan.
#[derive(Clone, Debug, PartialEq)]
pub enum MqpNode {
    /// Unresolved leaf: a pattern that still needs the network.
    Scan {
        /// The pattern to resolve.
        pattern: TriplePattern,
    },
    /// Resolved leaf: materialized rows.
    Mat(Relation),
    /// Natural join.
    Join {
        /// Left input.
        left: Box<MqpNode>,
        /// Right input.
        right: Box<MqpNode>,
    },
    /// Selection.
    Filter {
        /// Input.
        input: Box<MqpNode>,
        /// Predicate.
        expr: Expr,
    },
    /// Projection.
    Project {
        /// Input.
        input: Box<MqpNode>,
        /// Variables to keep.
        vars: Vec<Arc<str>>,
    },
    /// Sorting.
    OrderBy {
        /// Input.
        input: Box<MqpNode>,
        /// Items.
        items: Vec<OrderItem>,
    },
    /// Truncation.
    Limit {
        /// Input.
        input: Box<MqpNode>,
        /// Row budget.
        n: u64,
    },
    /// Ranking.
    TopN {
        /// Input.
        input: Box<MqpNode>,
        /// Items.
        items: Vec<OrderItem>,
        /// Rank budget.
        n: u64,
    },
    /// Pareto skyline.
    Skyline {
        /// Input.
        input: Box<MqpNode>,
        /// Preferences.
        items: Vec<SkyItem>,
    },
}

impl MqpNode {
    /// Converts a logical plan into an (entirely unresolved) MQP.
    pub fn from_logical(l: &Logical) -> MqpNode {
        match l {
            Logical::Pattern(p) => MqpNode::Scan { pattern: p.clone() },
            Logical::Join { left, right } => MqpNode::Join {
                left: Box::new(Self::from_logical(left)),
                right: Box::new(Self::from_logical(right)),
            },
            Logical::Filter { input, expr } => {
                MqpNode::Filter { input: Box::new(Self::from_logical(input)), expr: expr.clone() }
            }
            Logical::Project { input, vars } => {
                MqpNode::Project { input: Box::new(Self::from_logical(input)), vars: vars.clone() }
            }
            Logical::OrderBy { input, items } => MqpNode::OrderBy {
                input: Box::new(Self::from_logical(input)),
                items: items.clone(),
            },
            Logical::Limit { input, n } => {
                MqpNode::Limit { input: Box::new(Self::from_logical(input)), n: *n as u64 }
            }
            Logical::TopN { input, items, n } => MqpNode::TopN {
                input: Box::new(Self::from_logical(input)),
                items: items.clone(),
                n: *n as u64,
            },
            Logical::Skyline { input, items } => MqpNode::Skyline {
                input: Box::new(Self::from_logical(input)),
                items: items.clone(),
            },
        }
    }

    /// The leftmost unresolved scan, if any.
    pub fn first_scan(&self) -> Option<&TriplePattern> {
        match self {
            MqpNode::Scan { pattern } => Some(pattern),
            MqpNode::Mat(_) => None,
            MqpNode::Join { left, right } => left.first_scan().or_else(|| right.first_scan()),
            MqpNode::Filter { input, .. }
            | MqpNode::Project { input, .. }
            | MqpNode::OrderBy { input, .. }
            | MqpNode::Limit { input, .. }
            | MqpNode::TopN { input, .. }
            | MqpNode::Skyline { input, .. } => input.first_scan(),
        }
    }

    /// Number of unresolved scans.
    pub fn scans_remaining(&self) -> usize {
        match self {
            MqpNode::Scan { .. } => 1,
            MqpNode::Mat(_) => 0,
            MqpNode::Join { left, right } => left.scans_remaining() + right.scans_remaining(),
            MqpNode::Filter { input, .. }
            | MqpNode::Project { input, .. }
            | MqpNode::OrderBy { input, .. }
            | MqpNode::Limit { input, .. }
            | MqpNode::TopN { input, .. }
            | MqpNode::Skyline { input, .. } => input.scans_remaining(),
        }
    }

    /// Replaces the leftmost unresolved scan with a materialized
    /// relation. Returns `false` if there was none.
    pub fn resolve_first_scan(&mut self, rel: Relation) -> bool {
        match self {
            MqpNode::Scan { .. } => {
                *self = MqpNode::Mat(rel);
                true
            }
            MqpNode::Mat(_) => false,
            // Hand the relation to whichever side actually holds the
            // leftmost scan — cloning it for a fully-resolved left
            // subtree would copy a potentially large relation for
            // nothing.
            MqpNode::Join { left, right } => {
                if left.scans_remaining() > 0 {
                    left.resolve_first_scan(rel)
                } else {
                    right.resolve_first_scan(rel)
                }
            }
            MqpNode::Filter { input, .. }
            | MqpNode::Project { input, .. }
            | MqpNode::OrderBy { input, .. }
            | MqpNode::Limit { input, .. }
            | MqpNode::TopN { input, .. }
            | MqpNode::Skyline { input, .. } => input.resolve_first_scan(rel),
        }
    }

    /// If the next step is the right side of a join whose left side is
    /// already materialized, returns `(left relation, right pattern)` —
    /// the precondition for a fetch join.
    pub fn fetch_join_site(&self) -> Option<(&Relation, &TriplePattern)> {
        match self {
            MqpNode::Join { left, right } => {
                if let (MqpNode::Mat(rel), MqpNode::Scan { pattern }) =
                    (left.as_ref(), right.as_ref())
                {
                    return Some((rel, pattern));
                }
                left.fetch_join_site().or_else(|| right.fetch_join_site())
            }
            MqpNode::Scan { .. } | MqpNode::Mat(_) => None,
            MqpNode::Filter { input, .. }
            | MqpNode::Project { input, .. }
            | MqpNode::OrderBy { input, .. }
            | MqpNode::Limit { input, .. }
            | MqpNode::TopN { input, .. }
            | MqpNode::Skyline { input, .. } => input.fetch_join_site(),
        }
    }

    /// Eagerly folds every operator whose inputs are materialized.
    /// After `reduce`, a plan with zero remaining scans is a single
    /// [`MqpNode::Mat`].
    pub fn reduce(&mut self) {
        match self {
            MqpNode::Scan { .. } | MqpNode::Mat(_) => {}
            MqpNode::Join { left, right } => {
                left.reduce();
                right.reduce();
                if let (MqpNode::Mat(l), MqpNode::Mat(r)) = (left.as_ref(), right.as_ref()) {
                    *self = MqpNode::Mat(l.join(r));
                }
            }
            MqpNode::Filter { input, expr } => {
                input.reduce();
                if let MqpNode::Mat(rel) = input.as_mut() {
                    filter_relation(rel, expr);
                    *self = MqpNode::Mat(std::mem::replace(rel, Relation::empty(vec![])));
                }
            }
            MqpNode::Project { input, vars } => {
                input.reduce();
                if let MqpNode::Mat(rel) = input.as_ref() {
                    *self = MqpNode::Mat(rel.project(vars));
                }
            }
            MqpNode::OrderBy { input, items } => {
                input.reduce();
                if let MqpNode::Mat(rel) = input.as_mut() {
                    order_by(rel, items);
                    *self = MqpNode::Mat(std::mem::replace(rel, Relation::empty(vec![])));
                }
            }
            MqpNode::Limit { input, n } => {
                input.reduce();
                if let MqpNode::Mat(rel) = input.as_mut() {
                    limit(rel, *n as usize);
                    *self = MqpNode::Mat(std::mem::replace(rel, Relation::empty(vec![])));
                }
            }
            MqpNode::TopN { input, items, n } => {
                input.reduce();
                if let MqpNode::Mat(rel) = input.as_mut() {
                    top_n(rel, items, *n as usize);
                    *self = MqpNode::Mat(std::mem::replace(rel, Relation::empty(vec![])));
                }
            }
            MqpNode::Skyline { input, items } => {
                input.reduce();
                if let MqpNode::Mat(rel) = input.as_mut() {
                    skyline(rel, items);
                    *self = MqpNode::Mat(std::mem::replace(rel, Relation::empty(vec![])));
                }
            }
        }
    }

    /// The final relation, if the plan is fully reduced.
    pub fn result(&self) -> Option<&Relation> {
        match self {
            MqpNode::Mat(rel) => Some(rel),
            _ => None,
        }
    }
}

/// Completeness accounting of a travelling plan: how much of the data
/// the plan was responsible for was actually reached.
///
/// Every scan the plan resolves contributes its leaf operations
/// (per-key lookups, range subtrees, fetch-join legs) as *parts*; a
/// part that fails (lost lookup after retries, aborted range subtree)
/// leaves `parts_ok < parts_total` and flags a shortfall. A routing
/// hole that forces the plan to execute from a non-responsible peer is
/// annotated as a `skipped` subtree. The report travels *with* the
/// plan — forwarded hops keep accumulating into it — and surfaces in
/// the final result, so queries under churn return partial relations
/// with an honest completeness figure instead of timing out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Leaf operations that completed cleanly.
    pub parts_ok: u32,
    /// Leaf operations issued.
    pub parts_total: u32,
    /// Scans that fell short (at least one failed part).
    pub shortfalls: u32,
    /// Subtrees the plan could not route to and had to execute blind.
    pub skipped: u32,
}

impl Coverage {
    /// Coverage of a plan that has not touched the network (vacuously
    /// complete — a fully cached or empty plan reached everything it
    /// was responsible for).
    pub fn full() -> Self {
        Coverage::default()
    }

    /// Coverage of a query that produced no result at all (deadline
    /// exhausted with nothing to show): fraction 0.
    pub fn failed() -> Self {
        Coverage { parts_ok: 0, parts_total: 0, shortfalls: 1, skipped: 1 }
    }

    /// Records one finished scan: `ok` of `total` parts completed.
    pub fn record_scan(&mut self, ok: u32, total: u32) {
        self.parts_ok += ok;
        self.parts_total += total;
        if ok < total {
            self.shortfalls += 1;
        }
    }

    /// Annotates a subtree the plan could not route toward.
    pub fn record_skip(&mut self) {
        self.skipped += 1;
    }

    /// Fraction of responsible leaves actually reached, in `[0, 1]`.
    /// Skipped subtrees count as unreached parts; a plan that never
    /// needed the network is complete by convention.
    pub fn fraction(&self) -> f64 {
        let denom = self.parts_total + self.skipped;
        if denom == 0 {
            if self.shortfalls == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.parts_ok as f64 / denom as f64
        }
    }

    /// Whether every leaf was reached and nothing was skipped.
    pub fn complete(&self) -> bool {
        self.shortfalls == 0 && self.skipped == 0 && self.parts_ok == self.parts_total
    }
}

impl Wire for Coverage {
    fn encode(&self, buf: &mut BytesMut) {
        self.parts_ok.encode(buf);
        self.parts_total.encode(buf);
        self.shortfalls.encode(buf);
        self.skipped.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Coverage {
            parts_ok: Wire::decode(buf)?,
            parts_total: Wire::decode(buf)?,
            shortfalls: Wire::decode(buf)?,
            skipped: Wire::decode(buf)?,
        })
    }
}

/// A complete mutant plan as it travels the network.
#[derive(Clone, Debug, PartialEq)]
pub struct Mqp {
    /// Correlation id.
    pub qid: u64,
    /// Raw node id of the query origin (receives the final result).
    pub origin: u32,
    /// The plan tree.
    pub root: MqpNode,
    /// The query's filter predicates, carried for bound/similarity
    /// extraction when peers re-optimize remaining scans.
    pub filters: Vec<Expr>,
    /// LIMIT, if the query has one (enables early-termination pricing).
    pub limit_hint: Option<u64>,
    /// Plan-forwarding hops taken so far (mutant travel distance).
    pub hops: u32,
    /// Completeness accounting, accumulated across every peer that
    /// resolved a scan of this plan.
    pub coverage: Coverage,
}

impl Mqp {
    /// Builds a travelling plan for a query.
    pub fn new(
        qid: u64,
        origin: u32,
        root: MqpNode,
        filters: Vec<Expr>,
        limit: Option<u64>,
    ) -> Mqp {
        Mqp { qid, origin, root, filters, limit_hint: limit, hops: 0, coverage: Coverage::full() }
    }
}

/// Binds a pattern against candidate triples, producing a relation over
/// the pattern's variables. Literal positions must match (with
/// [`MappingSet`]-expanded attribute equivalence); repeated variables
/// must agree.
pub fn bind_triples(
    pattern: &TriplePattern,
    triples: &[Triple],
    mappings: &MappingSet,
) -> Relation {
    let mut schema: Vec<Arc<str>> = Vec::new();
    for t in [&pattern.subject, &pattern.attr, &pattern.value] {
        if let Term::Var(v) = t {
            if !schema.iter().any(|s| s == v) {
                schema.push(v.clone());
            }
        }
    }
    let accepted_attrs: Option<Vec<Arc<str>>> = match &pattern.attr {
        Term::Lit(Value::Str(a)) => Some(mappings.expand(a)),
        _ => None,
    };
    let mut rel = Relation::empty(schema);
    'next: for t in triples {
        // Literal positions first, matched by reference — a rejected
        // candidate costs zero clones.
        if let Term::Lit(expected) = &pattern.subject {
            let ok = matches!(expected, Value::Str(s) if s.as_ref() == t.oid.0.as_ref());
            if !ok {
                continue 'next;
            }
        }
        if matches!(&pattern.attr, Term::Lit(_)) {
            // Attribute literals match through schema mappings.
            let ok = accepted_attrs
                .as_ref()
                .is_some_and(|acc| acc.iter().any(|a| a.as_ref() == t.attr.as_ref()));
            if !ok {
                continue 'next;
            }
        }
        if let Term::Lit(expected) = &pattern.value {
            if !expected.eq_values(&t.value) {
                continue 'next;
            }
        }
        // Variable positions: clone only values that enter the row;
        // repeated variables compare against the bound value in place.
        let mut row: Vec<Option<Value>> = vec![None; rel.schema.len()];
        for (pos, term) in [(0u8, &pattern.subject), (1, &pattern.attr), (2, &pattern.value)] {
            if let Term::Var(v) = term {
                // The schema was built from this pattern's variables,
                // so the lookup always hits; skip the triple instead of
                // panicking if that invariant ever breaks.
                let Some(col) = rel.col(v) else { continue 'next };
                match &row[col] {
                    None => {
                        row[col] = Some(match pos {
                            0 => Value::Str(t.oid.0.clone().into()),
                            1 => Value::Str(t.attr.clone().into()),
                            _ => t.value.clone(),
                        })
                    }
                    Some(bound) => {
                        let agrees = match pos {
                            0 => bound.as_str() == Some(t.oid.0.as_ref()),
                            1 => bound.as_str() == Some(t.attr.as_ref()),
                            _ => bound.eq_values(&t.value),
                        };
                        if !agrees {
                            continue 'next; // repeated var mismatch
                        }
                    }
                }
            }
        }
        // Every schema variable occurs in the pattern, so each slot is
        // bound by the loop above; an incomplete row is dropped rather
        // than unwrapped.
        if let Some(vals) = row.into_iter().collect::<Option<Vec<Value>>>() {
            rel.rows.push(vals);
        }
    }
    rel
}

mod tag {
    pub const SCAN: u8 = 1;
    pub const MAT: u8 = 2;
    pub const JOIN: u8 = 3;
    pub const FILTER: u8 = 4;
    pub const PROJECT: u8 = 5;
    pub const ORDER_BY: u8 = 6;
    pub const LIMIT: u8 = 7;
    pub const TOP_N: u8 = 8;
    pub const SKYLINE: u8 = 9;
}

impl Wire for MqpNode {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MqpNode::Scan { pattern } => {
                tag::SCAN.encode(buf);
                pattern.encode(buf);
            }
            MqpNode::Mat(rel) => {
                tag::MAT.encode(buf);
                rel.encode(buf);
            }
            MqpNode::Join { left, right } => {
                tag::JOIN.encode(buf);
                left.encode(buf);
                right.encode(buf);
            }
            MqpNode::Filter { input, expr } => {
                tag::FILTER.encode(buf);
                input.encode(buf);
                expr.encode(buf);
            }
            MqpNode::Project { input, vars } => {
                tag::PROJECT.encode(buf);
                input.encode(buf);
                vars.encode(buf);
            }
            MqpNode::OrderBy { input, items } => {
                tag::ORDER_BY.encode(buf);
                input.encode(buf);
                items.encode(buf);
            }
            MqpNode::Limit { input, n } => {
                tag::LIMIT.encode(buf);
                input.encode(buf);
                n.encode(buf);
            }
            MqpNode::TopN { input, items, n } => {
                tag::TOP_N.encode(buf);
                input.encode(buf);
                items.encode(buf);
                n.encode(buf);
            }
            MqpNode::Skyline { input, items } => {
                tag::SKYLINE.encode(buf);
                input.encode(buf);
                items.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match u8::decode(buf)? {
            tag::SCAN => MqpNode::Scan { pattern: TriplePattern::decode(buf)? },
            tag::MAT => MqpNode::Mat(Relation::decode(buf)?),
            tag::JOIN => MqpNode::Join {
                left: Box::new(MqpNode::decode(buf)?),
                right: Box::new(MqpNode::decode(buf)?),
            },
            tag::FILTER => {
                MqpNode::Filter { input: Box::new(MqpNode::decode(buf)?), expr: Expr::decode(buf)? }
            }
            tag::PROJECT => MqpNode::Project {
                input: Box::new(MqpNode::decode(buf)?),
                vars: Wire::decode(buf)?,
            },
            tag::ORDER_BY => MqpNode::OrderBy {
                input: Box::new(MqpNode::decode(buf)?),
                items: Wire::decode(buf)?,
            },
            tag::LIMIT => {
                MqpNode::Limit { input: Box::new(MqpNode::decode(buf)?), n: Wire::decode(buf)? }
            }
            tag::TOP_N => MqpNode::TopN {
                input: Box::new(MqpNode::decode(buf)?),
                items: Wire::decode(buf)?,
                n: Wire::decode(buf)?,
            },
            tag::SKYLINE => MqpNode::Skyline {
                input: Box::new(MqpNode::decode(buf)?),
                items: Wire::decode(buf)?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for Mqp {
    fn encode(&self, buf: &mut BytesMut) {
        self.qid.encode(buf);
        self.origin.encode(buf);
        self.root.encode(buf);
        self.filters.encode(buf);
        self.limit_hint.encode(buf);
        self.hops.encode(buf);
        self.coverage.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Mqp {
            qid: Wire::decode(buf)?,
            origin: Wire::decode(buf)?,
            root: MqpNode::decode(buf)?,
            filters: Wire::decode(buf)?,
            limit_hint: Wire::decode(buf)?,
            hops: Wire::decode(buf)?,
            coverage: Wire::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_vql::{analyze, parse};

    fn mqp_of(src: &str) -> MqpNode {
        let a = analyze(parse(src).unwrap()).unwrap();
        MqpNode::from_logical(&Logical::from_query(&a))
    }

    fn rel(schema: &[&str], rows: Vec<Vec<Value>>) -> Relation {
        Relation { schema: schema.iter().map(|s| Arc::from(*s)).collect(), rows }
    }

    #[test]
    fn resolve_left_to_right_and_reduce() {
        let mut plan = mqp_of("SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g)}");
        assert_eq!(plan.scans_remaining(), 2);
        assert_eq!(plan.first_scan().unwrap().to_string(), "(?a,'name',?n)");

        let left = rel(&["a", "n"], vec![vec![Value::str("a1"), Value::str("alice")]]);
        assert!(plan.resolve_first_scan(left));
        plan.reduce();
        assert_eq!(plan.scans_remaining(), 1);
        assert_eq!(plan.first_scan().unwrap().to_string(), "(?a,'age',?g)");
        // The join's left side is materialized → fetch join possible.
        let (l, p) = plan.fetch_join_site().expect("fetch site");
        assert_eq!(l.len(), 1);
        assert_eq!(p.to_string(), "(?a,'age',?g)");

        let right = rel(&["a", "g"], vec![vec![Value::str("a1"), Value::Int(30)]]);
        assert!(plan.resolve_first_scan(right));
        plan.reduce();
        let out = plan.result().expect("fully reduced");
        assert_eq!(out.len(), 1);
        assert_eq!(out.schema.len(), 2); // projected to ?n, ?g
        assert_eq!(out.rows[0], vec![Value::str("alice"), Value::Int(30)]);
    }

    #[test]
    fn reduce_applies_filter_order_limit() {
        let mut plan =
            mqp_of("SELECT ?g WHERE {(?a,'age',?g) FILTER ?g > 10} ORDER BY ?g DESC LIMIT 2");
        let input = rel(
            &["a", "g"],
            vec![
                vec![Value::str("x"), Value::Int(5)],
                vec![Value::str("y"), Value::Int(30)],
                vec![Value::str("z"), Value::Int(20)],
                vec![Value::str("w"), Value::Int(40)],
            ],
        );
        plan.resolve_first_scan(input);
        plan.reduce();
        let out = plan.result().unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(40)], vec![Value::Int(30)]]);
    }

    #[test]
    fn bind_triples_literals_and_vars() {
        let q = parse("SELECT ?a,?v WHERE {(?a,'year',?v)}").unwrap();
        let triples = vec![
            Triple::new("a12", "year", Value::Int(2006)),
            Triple::new("v34", "year", Value::Int(2005)),
            Triple::new("a12", "title", Value::str("nope")),
        ];
        let rel = bind_triples(&q.patterns[0], &triples, &MappingSet::new());
        assert_eq!(rel.schema.len(), 2);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn bind_triples_repeated_var_must_agree() {
        let q = parse("SELECT ?x WHERE {(?x,'self',?x)}").unwrap();
        let triples = vec![
            Triple::new("a", "self", Value::str("a")),
            Triple::new("a", "self", Value::str("b")),
        ];
        let rel = bind_triples(&q.patterns[0], &triples, &MappingSet::new());
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0][0], Value::str("a"));
    }

    #[test]
    fn bind_triples_respects_mappings() {
        let q = parse("SELECT ?v WHERE {(?a,'confname',?v)}").unwrap();
        let triples = vec![
            Triple::new("c1", "confname", Value::str("ICDE")),
            Triple::new("c2", "dblp:conf", Value::str("VLDB")),
            Triple::new("c3", "unrelated", Value::str("X")),
        ];
        let mut maps = MappingSet::new();
        maps.add(&unistore_store::Mapping::new("confname", "dblp:conf"));
        let rel = bind_triples(&q.patterns[0], &triples, &maps);
        assert_eq!(rel.len(), 2, "mapped attribute must match too");
    }

    #[test]
    fn bind_triples_attr_var_binds_attr_name() {
        // Schema-level querying: the attribute itself becomes data.
        let q = parse("SELECT ?attr WHERE {('a12',?attr,?v)}").unwrap();
        let triples = vec![
            Triple::new("a12", "year", Value::Int(2006)),
            Triple::new("other", "year", Value::Int(2005)),
        ];
        let rel = bind_triples(&q.patterns[0], &triples, &MappingSet::new());
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0][0], Value::str("year"));
    }

    #[test]
    fn wire_roundtrip_full_plan() {
        let mut plan = mqp_of(
            "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30}
             ORDER BY SKYLINE OF ?g MIN TOP 3 LIMIT 2",
        );
        // Partially resolve so a Mat node is in the tree too.
        plan.resolve_first_scan(rel(&["a", "n"], vec![vec![Value::str("a1"), Value::str("x")]]));
        let filters = parse("SELECT ?g WHERE {(?a,'age',?g) FILTER ?g >= 30}").unwrap().filters;
        let mut mqp = Mqp::new(42, 7, plan, filters, Some(2));
        mqp.coverage.record_scan(3, 4);
        mqp.coverage.record_skip();
        let b = mqp.to_bytes();
        assert_eq!(b.len(), mqp.wire_size());
        assert_eq!(Mqp::from_bytes(&b).unwrap(), mqp);
    }

    #[test]
    fn coverage_accounting() {
        let mut c = Coverage::full();
        assert_eq!(c.fraction(), 1.0);
        assert!(c.complete());
        c.record_scan(4, 4);
        assert_eq!(c.fraction(), 1.0);
        assert!(c.complete());
        // A scan with one failed part: fraction drops, shortfall flagged.
        c.record_scan(3, 4);
        assert_eq!(c.shortfalls, 1);
        assert!((c.fraction() - 7.0 / 8.0).abs() < 1e-12);
        assert!(!c.complete());
        // A skipped subtree counts as an unreached part.
        let mut c = Coverage::full();
        c.record_scan(2, 2);
        c.record_skip();
        assert!((c.fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!(!c.complete());
        // A query that died without any result reads as zero coverage.
        assert_eq!(Coverage::failed().fraction(), 0.0);
    }
}

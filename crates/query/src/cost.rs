//! The cost model.
//!
//! Paper §2 / ref [5]: *"For each physical operator, and thus, for each
//! query plan, we can determine worst-case guarantees (almost all are
//! logarithmic) and predict exact costs. We base these calculations on
//! the characteristics of the used overlay system and the actual data
//! distribution. By this, we derive a cost model for choosing concrete
//! query plans, which is repeatedly applied at each peer involved in a
//! query."*
//!
//! Inputs: overlay parameters (peer/leaf counts → logarithmic routing
//! bounds) and per-attribute statistics (cardinalities, histograms over
//! the key space, q-gram posting counts). Output: predicted messages,
//! critical-path hop depth and bytes for every candidate physical
//! operator — experiment E8 compares these predictions against measured
//! values.

use std::sync::Arc;

use unistore_store::index::{attr_value_key, attr_value_range};
use unistore_store::qgram;
use unistore_store::{Triple, Value};
use unistore_util::stats::Histogram;
use unistore_util::wire::Wire;
use unistore_util::FxHashMap;

use crate::strategy::{JoinStrategy, RangeAlgo, ScanStrategy};

/// Overlay parameters the model derives its guarantees from.
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Number of peers.
    pub n_peers: f64,
    /// Number of trie leaves (= peer count / replication).
    pub n_leaves: f64,
    /// Replication factor.
    pub replication: f64,
    /// Expected one-way link delay in milliseconds (latency prediction).
    pub hop_ms: f64,
}

impl NetParams {
    /// Expected routing depth: log₂ of the leaf count.
    pub fn log_n(&self) -> f64 {
        self.n_leaves.max(2.0).log2()
    }
}

/// Selectivity assumed for attributes the statistics have never seen.
///
/// Statistics are disseminated with bounded staleness, so an attribute
/// can be live in the system before any snapshot mentions it. Pricing
/// such a scan at zero cardinality *and* zero cost made every
/// ghost-attribute plan look free and win `choose_scan` / join
/// arbitration outright; instead, unknown attributes are floored at
/// this conservative fraction of the total triple count (never below
/// one row).
pub const UNKNOWN_ATTR_SELECTIVITY: f64 = 0.01;

/// Bumps a refcount.
fn bump<K: std::hash::Hash + Eq>(map: &mut FxHashMap<K, u32>, k: K) {
    *map.entry(k).or_insert(0) += 1;
}

/// Drops a refcount, removing the entry when it reaches zero. Unknown
/// keys are ignored (saturating semantics).
fn unbump<K: std::hash::Hash + Eq>(map: &mut FxHashMap<K, u32>, k: &K) {
    if let Some(rc) = map.get_mut(k) {
        *rc -= 1;
        if *rc == 0 {
            map.remove(k);
        }
    }
}

/// Per-attribute statistics.
///
/// The `f64` fields are the numbers the cost formulas consume; the
/// private refcount maps are the support state that lets deltas keep
/// them *exact* under interleaved inserts and deletes (an incrementally
/// maintained snapshot is indistinguishable from a fresh
/// [`GlobalStats::build`] over the surviving triples — property-tested
/// below).
#[derive(Clone, Debug)]
pub struct AttrStats {
    /// Number of triples with this attribute.
    pub count: f64,
    /// Distinct values *in the order-preserving key space* — long
    /// strings collapse onto their encoded prefix. Drives range and
    /// lookup selectivity over keys.
    pub distinct: f64,
    /// Distinct values under semantic equality (`Value::semantic_hash`;
    /// no prefix collapse). Drives the semi-join selectivity, where
    /// membership is tested on full join keys, not key prefixes.
    pub join_distinct: f64,
    /// Histogram over A#v-index keys (range selectivity).
    pub hist: Histogram,
    /// Total q-gram postings (string values only).
    pub gram_postings: f64,
    /// Distinct q-grams.
    pub gram_distinct: f64,
    /// Live key-space values (refcounted; drives `distinct`).
    values: FxHashMap<u64, u32>,
    /// Live semantic values (refcounted; drives `join_distinct`).
    join_values: FxHashMap<u64, u32>,
    /// Live q-grams (refcounted with multiplicity; drives
    /// `gram_distinct`).
    grams: FxHashMap<u32, u32>,
}

impl AttrStats {
    /// Empty statistics for one attribute. The histogram spans exactly
    /// this attribute's slice of the key space, so its 256 buckets
    /// resolve value ranges *within* the attribute.
    fn empty(attr: &str) -> Self {
        let (lo, hi) = unistore_store::index::attr_range(attr);
        AttrStats {
            count: 0.0,
            distinct: 0.0,
            join_distinct: 0.0,
            hist: Histogram::new(lo, hi, 256),
            gram_postings: 0.0,
            gram_distinct: 0.0,
            values: FxHashMap::default(),
            join_values: FxHashMap::default(),
            grams: FxHashMap::default(),
        }
    }
}

/// A batch of statistics-relevant write events, shippable over the
/// wire: the in-band currency of statistics dissemination.
///
/// Writers record the triples they inserted and deleted; receivers fold
/// the batch into their snapshot with [`GlobalStats::apply_delta`].
/// Deltas merge by concatenation, so a node can buffer everything it
/// learns between two dissemination ticks into one message.
#[derive(Clone, Debug, Default)]
pub struct StatsDelta {
    /// Triples inserted since the last flush.
    pub inserted: Vec<Triple>,
    /// Triples deleted since the last flush.
    pub deleted: Vec<Triple>,
}

impl StatsDelta {
    /// An empty delta.
    pub fn new() -> Self {
        StatsDelta::default()
    }

    /// Records one inserted triple.
    pub fn record_insert(&mut self, t: Triple) {
        self.inserted.push(t);
    }

    /// Records one deleted triple.
    pub fn record_delete(&mut self, t: Triple) {
        self.deleted.push(t);
    }

    /// Folds another delta into this one.
    pub fn merge(&mut self, other: StatsDelta) {
        self.inserted.extend(other.inserted);
        self.deleted.extend(other.deleted);
    }

    /// Whether the delta carries no events.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Number of recorded write events.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// Cancels matched insert/delete pairs of identical triples: a
    /// value written and removed again within one buffering interval
    /// nets to zero in every statistic, so the pair need not ride the
    /// dissemination fan-out at all. Dissemination flushes call this
    /// before encoding; survivor order is preserved, so the compacted
    /// wire bytes stay deterministic.
    pub fn compact(&mut self) {
        if self.inserted.is_empty() || self.deleted.is_empty() {
            return;
        }
        // Quadratic pairing over exact triple equality — a tick's
        // buffer holds at most a few writes, and float-carrying values
        // rule out a hash multiset.
        let mut del_used = vec![false; self.deleted.len()];
        let inserted = std::mem::take(&mut self.inserted);
        for t in inserted {
            let pair = self
                .deleted
                .iter()
                .enumerate()
                .find(|(j, d)| !del_used[*j] && **d == t)
                .map(|(j, _)| j);
            match pair {
                Some(j) => del_used[j] = true,
                None => self.inserted.push(t),
            }
        }
        let mut j = 0;
        self.deleted.retain(|_| {
            let used = del_used[j];
            j += 1;
            !used
        });
    }
}

impl Wire for StatsDelta {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        unistore_util::wire::put_list(buf, &self.inserted);
        unistore_util::wire::put_list(buf, &self.deleted);
    }

    fn decode(buf: &mut bytes::Bytes) -> Result<Self, unistore_util::wire::WireError> {
        Ok(StatsDelta { inserted: Wire::decode(buf)?, deleted: Wire::decode(buf)? })
    }

    fn wire_size(&self) -> usize {
        self.inserted.wire_size() + self.deleted.wire_size()
    }
}

/// Global statistics: what the paper's peers gossip. Bulk-built once
/// per load, then maintained incrementally: every routed write folds in
/// as an O(delta) [`GlobalStats::apply_insert`] /
/// [`GlobalStats::apply_delete`] instead of a rescan of every triple
/// (protocol described in DESIGN.md §"Statistics distribution").
#[derive(Clone, Debug)]
pub struct GlobalStats {
    /// Total triples in the system.
    pub total: f64,
    /// Distinct OIDs.
    pub oid_distinct: f64,
    /// Distinct values across all attributes (v index).
    pub value_distinct: f64,
    /// Mean wire size of one triple, bytes.
    pub avg_triple_bytes: f64,
    /// Per-attribute statistics.
    pub attrs: FxHashMap<Arc<str>, AttrStats>,
    /// Overlay parameters.
    pub net: NetParams,
    /// Running sum of triple wire sizes (drives `avg_triple_bytes`).
    bytes: f64,
    /// Live OID hashes (refcounted; drives `oid_distinct`).
    oids: FxHashMap<u64, u32>,
    /// Live value key-bits (refcounted; drives `value_distinct`).
    values: FxHashMap<u64, u32>,
}

impl GlobalStats {
    /// Statistics of an empty system.
    pub fn empty(net: NetParams) -> Self {
        GlobalStats {
            total: 0.0,
            oid_distinct: 0.0,
            value_distinct: 0.0,
            avg_triple_bytes: 16.0,
            attrs: FxHashMap::default(),
            net,
            bytes: 0.0,
            oids: FxHashMap::default(),
            values: FxHashMap::default(),
        }
    }

    /// Builds statistics from a triple sample (typically: everything the
    /// workload generator inserted). Equivalent to folding every triple
    /// into [`GlobalStats::empty`] with [`GlobalStats::apply_insert`] —
    /// which is exactly how it is implemented, so the bulk and
    /// incremental paths cannot drift apart.
    pub fn build<'a>(triples: impl IntoIterator<Item = &'a Triple>, net: NetParams) -> Self {
        let mut stats = GlobalStats::empty(net);
        for t in triples {
            stats.apply_insert(t);
        }
        stats
    }

    /// Folds one inserted triple into the snapshot — O(1) amortized.
    pub fn apply_insert(&mut self, t: &Triple) {
        self.total += 1.0;
        self.bytes += t.wire_size() as f64;
        self.avg_triple_bytes = self.bytes / self.total;
        bump(&mut self.oids, t.oid.hash());
        self.oid_distinct = self.oids.len() as f64;
        bump(&mut self.values, t.value.key_bits());
        self.value_distinct = self.values.len() as f64;
        let a = self.attrs.entry(t.attr.clone()).or_insert_with(|| AttrStats::empty(&t.attr));
        a.count += 1.0;
        bump(&mut a.values, t.value.key_bits());
        a.distinct = a.values.len() as f64;
        bump(&mut a.join_values, t.value.semantic_hash());
        a.join_distinct = a.join_values.len() as f64;
        a.hist.add(attr_value_key(&t.attr, &t.value));
        if let Value::Str(s) = &t.value {
            let gs = qgram::qgrams(s);
            a.gram_postings += gs.len() as f64;
            for g in gs {
                bump(&mut a.grams, g);
            }
            a.gram_distinct = a.grams.len() as f64;
        }
    }

    /// Folds one deleted triple out of the snapshot — the exact inverse
    /// of [`GlobalStats::apply_insert`]. Deletes of triples whose
    /// `(attr, value)` the snapshot never counted are ignored outright
    /// (the per-attr value refcounts are the authority), so a stray or
    /// duplicated delete cannot corrupt the totals; a delete of a known
    /// `(attr, value)` under an unknown OID still decrements the
    /// aggregates — indistinguishable at the statistics' granularity,
    /// and the OID refcount itself saturates.
    pub fn apply_delete(&mut self, t: &Triple) {
        let Some(a) = self.attrs.get_mut(&t.attr) else { return };
        if a.count < 1.0 || !a.values.contains_key(&t.value.key_bits()) {
            return;
        }
        self.total -= 1.0;
        self.bytes -= t.wire_size() as f64;
        self.avg_triple_bytes = if self.total > 0.0 { self.bytes / self.total } else { 16.0 };
        unbump(&mut self.oids, &t.oid.hash());
        self.oid_distinct = self.oids.len() as f64;
        unbump(&mut self.values, &t.value.key_bits());
        self.value_distinct = self.values.len() as f64;
        a.count -= 1.0;
        unbump(&mut a.values, &t.value.key_bits());
        a.distinct = a.values.len() as f64;
        unbump(&mut a.join_values, &t.value.semantic_hash());
        a.join_distinct = a.join_values.len() as f64;
        a.hist.remove(attr_value_key(&t.attr, &t.value));
        if let Value::Str(s) = &t.value {
            let gs = qgram::qgrams(s);
            a.gram_postings -= gs.len() as f64;
            for g in gs {
                unbump(&mut a.grams, &g);
            }
            a.gram_distinct = a.grams.len() as f64;
        }
        if a.count <= 0.0 {
            // A fresh build over the survivors would not contain the
            // attribute at all; match it.
            self.attrs.remove(&t.attr);
        }
    }

    /// Folds a write batch into the snapshot — O(delta).
    pub fn apply_delta(&mut self, delta: &StatsDelta) {
        for t in &delta.inserted {
            self.apply_insert(t);
        }
        for t in &delta.deleted {
            self.apply_delete(t);
        }
    }

    /// Mean triples stored per leaf.
    pub fn triples_per_leaf(&self) -> f64 {
        (self.total / self.net.n_leaves).max(1.0)
    }

    /// Conservative cardinality assumed for scans on attributes the
    /// statistics have never seen (see [`UNKNOWN_ATTR_SELECTIVITY`]).
    pub fn unknown_attr_card(&self) -> f64 {
        (self.total * UNKNOWN_ATTR_SELECTIVITY).max(1.0)
    }

    fn attr(&self, attr: &str) -> Option<&AttrStats> {
        self.attrs.get(attr)
    }
}

/// Predicted cost of a physical operator or plan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostVector {
    /// Total messages.
    pub messages: f64,
    /// Critical-path length in hops (latency = depth × hop delay).
    pub depth: f64,
    /// Bytes moved.
    pub bytes: f64,
}

impl CostVector {
    /// Accumulates another operator's cost executed *after* this one.
    pub fn then(&self, next: &CostVector) -> CostVector {
        CostVector {
            messages: self.messages + next.messages,
            depth: self.depth + next.depth,
            bytes: self.bytes + next.bytes,
        }
    }

    /// Predicted latency in milliseconds.
    pub fn latency_ms(&self, hop_ms: f64) -> f64 {
        self.depth * hop_ms
    }

    /// Scalar score for strategy selection: message count dominates
    /// (bandwidth is the scarce resource in the paper's setting), depth
    /// breaks ties toward lower latency.
    pub fn score(&self) -> f64 {
        self.messages + 0.01 * self.depth + 1e-6 * self.bytes
    }
}

/// A priced scan: predicted cost and output cardinality.
#[derive(Clone, Debug)]
pub struct ScanEstimate {
    /// Predicted network cost.
    pub cost: CostVector,
    /// Predicted result rows.
    pub cardinality: f64,
}

/// The cost model over one statistics snapshot.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// The statistics driving the predictions.
    pub stats: GlobalStats,
}

impl CostModel {
    /// Creates the model.
    pub fn new(stats: GlobalStats) -> Self {
        CostModel { stats }
    }

    /// Folds a statistics delta into the model — O(delta), no rescan.
    pub fn apply_delta(&mut self, delta: &StatsDelta) {
        self.stats.apply_delta(delta);
    }

    /// Prices one scan strategy. `limit_hint` enables early-termination
    /// pricing for sequential ranges under LIMIT.
    pub fn scan(&self, s: &ScanStrategy, limit_hint: Option<usize>) -> ScanEstimate {
        let st = &self.stats;
        let log_n = st.net.log_n();
        let per_leaf = st.triples_per_leaf();
        let row_bytes = st.avg_triple_bytes;
        match s {
            ScanStrategy::OidLookup { .. } => {
                let card = (st.total / st.oid_distinct.max(1.0)).max(1.0);
                ScanEstimate {
                    cost: CostVector {
                        messages: log_n + 1.0,
                        depth: log_n + 1.0,
                        bytes: card * row_bytes,
                    },
                    cardinality: card,
                }
            }
            ScanStrategy::AttrValueLookup { attr, .. } => {
                let card =
                    st.attr(attr).map_or(st.unknown_attr_card(), |a| a.count / a.distinct.max(1.0));
                ScanEstimate {
                    cost: CostVector {
                        messages: log_n + 1.0,
                        depth: log_n + 1.0,
                        bytes: card * row_bytes,
                    },
                    cardinality: card,
                }
            }
            ScanStrategy::AttrRange { attr, lo, hi, algo } => {
                let card = match st.attr(attr) {
                    None => st.unknown_attr_card(),
                    Some(a) => {
                        let (klo, khi) = attr_value_range(attr, lo.as_ref(), hi.as_ref());
                        a.hist.estimate_range(klo, khi).max(1.0)
                    }
                };
                let leaves = (card / per_leaf).ceil().clamp(1.0, st.net.n_leaves);
                let (messages, depth, eff_card) = match algo {
                    RangeAlgo::Parallel => (log_n + 2.0 * leaves, log_n + 2.0, card),
                    RangeAlgo::Sequential => {
                        // Early termination: visit only the leaves needed
                        // to fill the limit.
                        let eff_leaves = match limit_hint {
                            Some(n) if card > 0.0 => {
                                (n as f64 * leaves / card).ceil().clamp(1.0, leaves)
                            }
                            _ => leaves,
                        };
                        let eff_card =
                            if eff_leaves < leaves { card * eff_leaves / leaves } else { card };
                        (log_n + 2.0 * eff_leaves, log_n + eff_leaves + 1.0, eff_card)
                    }
                };
                ScanEstimate {
                    cost: CostVector { messages, depth, bytes: eff_card * row_bytes },
                    cardinality: eff_card,
                }
            }
            ScanStrategy::AttrPrefix { attr, prefix, .. } => {
                let card = match st.attr(attr) {
                    None => st.unknown_attr_card(),
                    Some(a) => {
                        let (klo, khi) = unistore_store::index::attr_prefix_range(attr, prefix);
                        a.hist.estimate_range(klo, khi).max(1.0)
                    }
                };
                let leaves = (card / per_leaf).ceil().clamp(1.0, st.net.n_leaves);
                ScanEstimate {
                    cost: CostVector {
                        messages: log_n + 2.0 * leaves,
                        depth: log_n + 2.0,
                        bytes: card * row_bytes,
                    },
                    cardinality: card,
                }
            }
            ScanStrategy::QGram { attr, target, k } => {
                let grams = (target.len() + qgram::QGRAM_Q - 1) as f64;
                let (candidates, verified) = match st.attr(attr) {
                    None => (st.unknown_attr_card(), st.unknown_attr_card()),
                    Some(a) => {
                        let posting = a.gram_postings / a.gram_distinct.max(1.0);
                        let candidates = (grams * posting).min(a.count);
                        // Verified matches: crude selectivity — strings
                        // within distance k of one target are rare.
                        let sel = ((*k as f64 + 1.0) / a.distinct.max(1.0)).min(1.0);
                        (candidates, (a.count * sel).max(1.0))
                    }
                };
                ScanEstimate {
                    cost: CostVector {
                        messages: grams * (log_n + 1.0),
                        depth: log_n + 1.0,
                        bytes: candidates * row_bytes,
                    },
                    cardinality: verified,
                }
            }
            ScanStrategy::ValueLookup { .. } => {
                let card = (st.total / st.value_distinct.max(1.0)).max(1.0);
                ScanEstimate {
                    cost: CostVector {
                        messages: log_n + 1.0,
                        depth: log_n + 1.0,
                        bytes: card * row_bytes,
                    },
                    cardinality: card,
                }
            }
            ScanStrategy::FullScan { .. } => {
                let leaves = st.net.n_leaves;
                ScanEstimate {
                    cost: CostVector {
                        messages: 2.0 * leaves,
                        depth: log_n + 2.0,
                        bytes: st.total * row_bytes,
                    },
                    cardinality: st.total,
                }
            }
        }
    }

    /// Picks the cheapest scan among candidates. Returns the index into
    /// `candidates` plus the estimate.
    pub fn choose_scan(
        &self,
        candidates: &[ScanStrategy],
        limit_hint: Option<usize>,
    ) -> (usize, ScanEstimate) {
        let mut best: Option<(usize, ScanEstimate)> = None;
        for (i, s) in candidates.iter().enumerate() {
            let est = self.scan(s, limit_hint);
            // Strict `<` keeps the first of equally-cheap candidates,
            // matching `Iterator::min_by` so plan choices (and bench
            // snapshot digests) are unchanged by the unwrap removal.
            let replace = best.as_ref().is_none_or(|(_, b)| est.cost.score() < b.cost.score());
            if replace {
                best = Some((i, est));
            }
        }
        // An empty candidate list is a planner bug; price it as
        // unplannable instead of panicking.
        best.unwrap_or((
            0,
            ScanEstimate {
                cost: CostVector {
                    messages: f64::INFINITY,
                    depth: f64::INFINITY,
                    bytes: f64::INFINITY,
                },
                cardinality: 0.0,
            },
        ))
    }

    /// Prices a join given the left cardinality and the right side's
    /// best independent scan. Fetch join costs one lookup per distinct
    /// left binding.
    pub fn join(
        &self,
        left_card: f64,
        right_best: &ScanEstimate,
        fetch_possible: bool,
    ) -> (JoinStrategy, CostVector) {
        let log_n = self.stats.net.log_n();
        let collect = right_best.cost;
        if !fetch_possible {
            return (JoinStrategy::Collect, collect);
        }
        let fetch = CostVector {
            messages: left_card.max(1.0) * (log_n + 1.0),
            depth: log_n + 1.0,
            bytes: right_best.cardinality.min(left_card) * self.stats.avg_triple_bytes,
        };
        if fetch.score() < collect.score() {
            (JoinStrategy::Fetch, fetch)
        } else {
            (JoinStrategy::Collect, collect)
        }
    }

    /// Prices a Bloom-filtered semi-join pushdown of the right side's
    /// best scan: the message structure and critical path are the
    /// collect scan's (the filter rides the existing request messages),
    /// but every request grows by the filter's wire size and the leaves
    /// reply with only the rows whose join key appears on the left —
    /// plus the filter's false positives.
    ///
    /// `left_distinct` is the number of distinct join keys on the
    /// materialized side, `right_distinct` the estimated distinct join
    /// keys in the scanned region (drives the semi-join selectivity
    /// `min(1, left/right)`), `filter_bytes` the encoded filter size and
    /// `fpr` its false-positive rate.
    pub fn semi_join(
        &self,
        left_distinct: f64,
        right_distinct: f64,
        right_best: &ScanEstimate,
        filter_bytes: f64,
        fpr: f64,
    ) -> CostVector {
        let sel = (left_distinct / right_distinct.max(1.0) + fpr).min(1.0);
        let surviving = right_best.cardinality * sel;
        CostVector {
            messages: right_best.cost.messages,
            depth: right_best.cost.depth,
            bytes: right_best.cost.messages * filter_bytes
                + surviving * self.stats.avg_triple_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_vql::parse;

    fn sample_triples() -> Vec<Triple> {
        let mut ts = Vec::new();
        for i in 0..200 {
            ts.push(Triple::new(&format!("p{i}"), "name", Value::str(&format!("person-{i}"))));
            ts.push(Triple::new(&format!("p{i}"), "age", Value::Int(20 + (i % 50) as i64)));
            ts.push(Triple::new(
                &format!("p{i}"),
                "city",
                Value::str(if i % 10 == 0 { "geneva" } else { "zurich" }),
            ));
        }
        ts
    }

    fn model() -> CostModel {
        let net = NetParams { n_peers: 64.0, n_leaves: 64.0, replication: 1.0, hop_ms: 40.0 };
        CostModel::new(GlobalStats::build(&sample_triples(), net))
    }

    #[test]
    fn stats_aggregate_correctly() {
        let m = model();
        assert_eq!(m.stats.total, 600.0);
        assert_eq!(m.stats.oid_distinct, 200.0);
        let age = &m.stats.attrs[&Arc::<str>::from("age")];
        assert_eq!(age.count, 200.0);
        assert_eq!(age.distinct, 50.0);
        let city = &m.stats.attrs[&Arc::<str>::from("city")];
        assert_eq!(city.distinct, 2.0);
        assert!(city.gram_postings > 0.0);
    }

    #[test]
    fn lookup_is_logarithmic() {
        let m = model();
        let e = m.scan(
            &ScanStrategy::AttrValueLookup { attr: "age".into(), value: Value::Int(30) },
            None,
        );
        let log_n = 6.0;
        assert_eq!(e.cost.messages, log_n + 1.0);
        assert_eq!(e.cardinality, 4.0); // 200 / 50 distinct
    }

    #[test]
    fn range_cost_scales_with_selectivity() {
        let m = model();
        let narrow = m.scan(
            &ScanStrategy::AttrRange {
                attr: "age".into(),
                lo: Some(Value::Int(20)),
                hi: Some(Value::Int(22)),
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        let wide = m.scan(
            &ScanStrategy::AttrRange {
                attr: "age".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        assert!(wide.cardinality > narrow.cardinality);
        assert!(wide.cost.messages > narrow.cost.messages);
    }

    #[test]
    fn sequential_with_limit_visits_fewer_leaves() {
        let m = model();
        let strat = |algo| ScanStrategy::AttrRange { attr: "age".into(), lo: None, hi: None, algo };
        let seq_all = m.scan(&strat(RangeAlgo::Sequential), None);
        let seq_lim = m.scan(&strat(RangeAlgo::Sequential), Some(3));
        assert!(seq_lim.cost.messages < seq_all.cost.messages);
        // And cheap enough to beat the parallel shower.
        let par = m.scan(&strat(RangeAlgo::Parallel), Some(3));
        assert!(seq_lim.cost.score() < par.cost.score());
    }

    #[test]
    fn choose_scan_prefers_exact_lookup() {
        let m = model();
        let q = parse("SELECT ?a WHERE {(?a,'age',2006)}").unwrap();
        let cands = crate::strategy::scan_candidates(&q.patterns[0], &q.filters);
        let (i, _) = m.choose_scan(&cands, None);
        assert!(matches!(cands[i], ScanStrategy::AttrValueLookup { .. }));
    }

    #[test]
    fn qgram_beats_naive_on_large_attr_and_loses_on_tiny() {
        let m = model();
        // 'name' has 200 long-ish strings; q-gram should beat a full
        // attribute sweep for a short target.
        let qg = m.scan(
            &ScanStrategy::QGram { attr: "name".into(), target: "person-7".into(), k: 1 },
            None,
        );
        let naive = m.scan(
            &ScanStrategy::AttrRange {
                attr: "name".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        // The decision flips with scale; here both are priced — make
        // sure the estimates are finite and ordered sanely.
        assert!(qg.cost.messages > 0.0 && naive.cost.messages > 0.0);
        assert!(qg.cardinality <= naive.cardinality);
    }

    #[test]
    fn fetch_join_wins_for_small_left() {
        let m = model();
        let right = m.scan(
            &ScanStrategy::AttrRange {
                attr: "name".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        let (strat_small, _) = m.join(2.0, &right, true);
        assert_eq!(strat_small, JoinStrategy::Fetch);
        let (strat_big, _) = m.join(10_000.0, &right, true);
        assert_eq!(strat_big, JoinStrategy::Collect);
        let (forced, _) = m.join(2.0, &right, false);
        assert_eq!(forced, JoinStrategy::Collect);
    }

    #[test]
    fn semi_join_beats_collect_on_selective_left_only() {
        let m = model();
        let right = m.scan(
            &ScanStrategy::AttrRange {
                attr: "name".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        // 2 of 200 names survive: bytes shrink (reply side collapses;
        // the remaining cost is the ~16-byte filter riding each
        // request), messages and depth unchanged.
        let semi = m.semi_join(2.0, 200.0, &right, 16.0, 0.01);
        assert_eq!(semi.messages, right.cost.messages);
        assert_eq!(semi.depth, right.cost.depth);
        assert!(semi.bytes < right.cost.bytes / 2.0, "selective semi-join ships a fraction");
        assert!(semi.score() < right.cost.score());
        // Left covers everything: the filter is pure overhead.
        let futile = m.semi_join(200.0, 200.0, &right, 16.0, 0.01);
        assert!(futile.bytes > right.cost.bytes);
        assert!(futile.score() > right.cost.score());
    }

    #[test]
    fn unknown_attr_estimates_floor_not_zero() {
        let m = model();
        // A scan on a never-seen attribute must not look free: floor it
        // at the conservative default selectivity so it cannot hijack
        // choose_scan / join arbitration.
        let floor = (m.stats.total * UNKNOWN_ATTR_SELECTIVITY).max(1.0);
        for s in [
            ScanStrategy::AttrRange {
                attr: "ghost".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            ScanStrategy::AttrValueLookup { attr: "ghost".into(), value: Value::Int(1) },
            ScanStrategy::AttrPrefix {
                attr: "ghost".into(),
                prefix: "g".into(),
                algo: RangeAlgo::Parallel,
            },
            ScanStrategy::QGram { attr: "ghost".into(), target: "spook".into(), k: 1 },
        ] {
            let e = m.scan(&s, None);
            assert!(
                e.cardinality >= floor,
                "{}: cardinality {} under floor",
                s.name(),
                e.cardinality
            );
            assert!(e.cost.bytes > 0.0, "{}: ghost scan priced as free", s.name());
        }
        // The floor keeps a ghost range from undercutting a known,
        // genuinely selective lookup of the same shape.
        let known = m.scan(
            &ScanStrategy::AttrValueLookup { attr: "age".into(), value: Value::Int(30) },
            None,
        );
        let ghost = m.scan(
            &ScanStrategy::AttrRange {
                attr: "ghost".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        assert!(ghost.cost.score() >= known.cost.score());
    }

    /// Field-by-field equality on everything the cost formulas consume.
    fn assert_stats_match(a: &GlobalStats, b: &GlobalStats) {
        assert_eq!(a.total, b.total, "total");
        assert_eq!(a.oid_distinct, b.oid_distinct, "oid_distinct");
        assert_eq!(a.value_distinct, b.value_distinct, "value_distinct");
        assert_eq!(a.avg_triple_bytes, b.avg_triple_bytes, "avg_triple_bytes");
        assert_eq!(a.oids, b.oids, "oid refcounts");
        assert_eq!(a.values, b.values, "value refcounts");
        let mut keys: Vec<_> = a.attrs.keys().collect();
        let mut bkeys: Vec<_> = b.attrs.keys().collect();
        keys.sort();
        bkeys.sort();
        assert_eq!(keys, bkeys, "attribute sets");
        for (k, sa) in &a.attrs {
            let sb = &b.attrs[k];
            assert_eq!(sa.count, sb.count, "{k}: count");
            assert_eq!(sa.distinct, sb.distinct, "{k}: distinct");
            assert_eq!(sa.join_distinct, sb.join_distinct, "{k}: join_distinct");
            assert_eq!(sa.gram_postings, sb.gram_postings, "{k}: gram_postings");
            assert_eq!(sa.gram_distinct, sb.gram_distinct, "{k}: gram_distinct");
            assert_eq!(sa.values, sb.values, "{k}: value refcounts");
            assert_eq!(sa.join_values, sb.join_values, "{k}: join refcounts");
            assert_eq!(sa.grams, sb.grams, "{k}: gram refcounts");
            assert_eq!(sa.hist.count(), sb.hist.count(), "{k}: hist count");
            assert_eq!(sa.hist.bucket_counts(), sb.hist.bucket_counts(), "{k}: hist buckets");
            assert_eq!(
                sa.hist.distinct_estimate(),
                sb.hist.distinct_estimate(),
                "{k}: hist distinct"
            );
        }
    }

    #[test]
    fn delta_insert_then_delete_restores_baseline() {
        let net = NetParams { n_peers: 64.0, n_leaves: 64.0, replication: 1.0, hop_ms: 40.0 };
        let base = sample_triples();
        let mut stats = GlobalStats::build(&base, net);
        let extra = vec![
            Triple::new("x1", "rating", Value::Int(5)),
            Triple::new("x2", "rating", Value::Int(3)),
            Triple::new("x1", "name", Value::str("mallory")),
        ];
        let mut delta = StatsDelta::new();
        for t in &extra {
            delta.record_insert(t.clone());
        }
        stats.apply_delta(&delta);
        let all: Vec<Triple> = base.iter().chain(&extra).cloned().collect();
        assert_stats_match(&stats, &GlobalStats::build(&all, net));
        // Deleting the same triples restores the original snapshot.
        let mut undo = StatsDelta::new();
        for t in &extra {
            undo.record_delete(t.clone());
        }
        stats.apply_delta(&undo);
        assert_stats_match(&stats, &GlobalStats::build(&base, net));
    }

    #[test]
    fn deleting_unseen_triples_saturates() {
        let net = NetParams { n_peers: 8.0, n_leaves: 8.0, replication: 1.0, hop_ms: 1.0 };
        let base = vec![Triple::new("a", "x", Value::Int(1))];
        let mut stats = GlobalStats::build(&base, net);
        stats.apply_delete(&Triple::new("b", "ghost", Value::Int(9))); // unknown attr
        stats.apply_delete(&Triple::new("a", "x", Value::Int(99))); // known attr, unseen value
        assert_eq!(stats.total, 1.0, "unseen (attr, value) deletes must not touch totals");
        assert_eq!(stats.attrs[&Arc::<str>::from("x")].count, 1.0);
        stats.apply_delete(&Triple::new("a", "x", Value::Int(1)));
        stats.apply_delete(&Triple::new("a", "x", Value::Int(1))); // double delete
        assert_eq!(stats.total, 0.0);
        assert!(stats.attrs.is_empty());
    }

    #[test]
    fn stats_delta_wire_roundtrip() {
        let mut d = StatsDelta::new();
        d.record_insert(Triple::new("o1", "name", Value::str("alice")));
        d.record_delete(Triple::new("o2", "age", Value::Int(44)));
        let b = d.to_bytes();
        assert_eq!(b.len(), d.wire_size());
        let back = StatsDelta::from_bytes(&b).unwrap();
        assert_eq!(format!("{back:?}"), format!("{d:?}"));
        assert!(StatsDelta::new().is_empty());
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn compact_cancels_matched_insert_delete_pairs() {
        let a = Triple::new("o1", "rating", Value::Int(5));
        let b = Triple::new("o2", "rating", Value::Int(3));
        let c = Triple::new("o3", "name", Value::str("carol"));
        let mut d = StatsDelta::new();
        // a inserted twice, deleted once → one insert survives.
        d.record_insert(a.clone());
        d.record_insert(a.clone());
        d.record_delete(a.clone());
        // b inserted and deleted → fully cancelled.
        d.record_insert(b.clone());
        d.record_delete(b.clone());
        // c only deleted → delete survives.
        d.record_delete(c.clone());
        d.compact();
        assert_eq!(d.inserted, vec![a]);
        assert_eq!(d.deleted, vec![c]);

        // Compaction never changes the net effect on a snapshot.
        let net = NetParams { n_peers: 8.0, n_leaves: 8.0, replication: 1.0, hop_ms: 1.0 };
        let base = sample_triples();
        let mut d2 = StatsDelta::new();
        for t in &base[..3] {
            d2.record_insert(t.clone());
            d2.record_delete(t.clone());
        }
        d2.record_insert(Triple::new("z9", "rating", Value::Int(7)));
        let mut plain = GlobalStats::build(&base, net);
        let mut compacted = plain.clone();
        plain.apply_delta(&d2);
        d2.compact();
        compacted.apply_delta(&d2);
        assert_stats_match(&plain, &compacted);

        // Nothing to cancel: a no-op, not a reorder.
        let mut d3 = StatsDelta::new();
        d3.record_insert(b);
        d3.compact();
        assert_eq!(d3.len(), 1);
    }

    mod incremental_matches_rebuild {
        //! The tentpole property: after ANY insert/delete sequence, the
        //! incrementally maintained snapshot is indistinguishable from a
        //! from-scratch `GlobalStats::build` over the surviving triples.

        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn property(
                inserts in proptest::collection::vec(
                    ("[a-e]{1,3}", "[a-c]{1,2}", 0u64..40),
                    1..60,
                ),
                delete_picks in proptest::collection::vec(0usize..1000, 0..40),
            ) {
                let net = NetParams {
                    n_peers: 16.0, n_leaves: 16.0, replication: 1.0, hop_ms: 1.0,
                };
                // Mixed-type values: strings exercise the q-gram
                // counters, ints/floats the numeric key space.
                let triples: Vec<Triple> = inserts
                    .iter()
                    .map(|(oid, attr, n)| {
                        let v = match n % 3 {
                            0 => Value::Int(*n as i64 - 20),
                            1 => Value::Float(*n as f64 / 4.0),
                            _ => Value::str(&format!("s{}", n % 7)),
                        };
                        Triple::new(oid, attr, v)
                    })
                    .collect();
                let mut live = GlobalStats::empty(net);
                let mut survivors: Vec<Triple> = Vec::new();
                // Interleave: insert everything, deleting a previously
                // inserted survivor after every few inserts.
                let mut picks = delete_picks.iter();
                for (i, t) in triples.iter().enumerate() {
                    live.apply_insert(t);
                    survivors.push(t.clone());
                    if i % 3 == 2 {
                        if let Some(p) = picks.next() {
                            if !survivors.is_empty() {
                                let victim = survivors.remove(p % survivors.len());
                                live.apply_delete(&victim);
                            }
                        }
                    }
                }
                let fresh = GlobalStats::build(&survivors, net);
                assert_stats_match(&live, &fresh);
            }
        }
    }
}

//! The cost model.
//!
//! Paper §2 / ref [5]: *"For each physical operator, and thus, for each
//! query plan, we can determine worst-case guarantees (almost all are
//! logarithmic) and predict exact costs. We base these calculations on
//! the characteristics of the used overlay system and the actual data
//! distribution. By this, we derive a cost model for choosing concrete
//! query plans, which is repeatedly applied at each peer involved in a
//! query."*
//!
//! Inputs: overlay parameters (peer/leaf counts → logarithmic routing
//! bounds) and per-attribute statistics (cardinalities, histograms over
//! the key space, q-gram posting counts). Output: predicted messages,
//! critical-path hop depth and bytes for every candidate physical
//! operator — experiment E8 compares these predictions against measured
//! values.

use std::sync::Arc;

use unistore_store::index::{attr_value_key, attr_value_range};
use unistore_store::qgram;
use unistore_store::{Triple, Value};
use unistore_util::stats::Histogram;
use unistore_util::wire::Wire;
use unistore_util::{FxHashMap, FxHashSet};

use crate::strategy::{JoinStrategy, RangeAlgo, ScanStrategy};

/// Overlay parameters the model derives its guarantees from.
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Number of peers.
    pub n_peers: f64,
    /// Number of trie leaves (= peer count / replication).
    pub n_leaves: f64,
    /// Replication factor.
    pub replication: f64,
    /// Expected one-way link delay in milliseconds (latency prediction).
    pub hop_ms: f64,
}

impl NetParams {
    /// Expected routing depth: log₂ of the leaf count.
    pub fn log_n(&self) -> f64 {
        self.n_leaves.max(2.0).log2()
    }
}

/// Per-attribute statistics.
#[derive(Clone, Debug)]
pub struct AttrStats {
    /// Number of triples with this attribute.
    pub count: f64,
    /// Distinct values *in the order-preserving key space* — long
    /// strings collapse onto their encoded prefix. Drives range and
    /// lookup selectivity over keys.
    pub distinct: f64,
    /// Distinct values under semantic equality (`Value::semantic_hash`;
    /// no prefix collapse). Drives the semi-join selectivity, where
    /// membership is tested on full join keys, not key prefixes.
    pub join_distinct: f64,
    /// Histogram over A#v-index keys (range selectivity).
    pub hist: Histogram,
    /// Total q-gram postings (string values only).
    pub gram_postings: f64,
    /// Distinct q-grams.
    pub gram_distinct: f64,
}

/// Global statistics: what the paper's peers gossip; here aggregated by
/// the driver (substitution documented in DESIGN.md).
#[derive(Clone, Debug)]
pub struct GlobalStats {
    /// Total triples in the system.
    pub total: f64,
    /// Distinct OIDs.
    pub oid_distinct: f64,
    /// Distinct values across all attributes (v index).
    pub value_distinct: f64,
    /// Mean wire size of one triple, bytes.
    pub avg_triple_bytes: f64,
    /// Per-attribute statistics.
    pub attrs: FxHashMap<Arc<str>, AttrStats>,
    /// Overlay parameters.
    pub net: NetParams,
}

impl GlobalStats {
    /// Builds statistics from a triple sample (typically: everything the
    /// workload generator inserted).
    pub fn build<'a>(triples: impl IntoIterator<Item = &'a Triple>, net: NetParams) -> Self {
        let mut total = 0f64;
        let mut bytes = 0f64;
        let mut oids: FxHashSet<u64> = FxHashSet::default();
        let mut values: FxHashSet<u64> = FxHashSet::default();
        struct Acc {
            count: f64,
            values: FxHashSet<u64>,
            join_values: FxHashSet<u64>,
            hist: Histogram,
            gram_postings: f64,
            grams: FxHashSet<u32>,
        }
        let mut attrs: FxHashMap<Arc<str>, Acc> = FxHashMap::default();
        for t in triples {
            total += 1.0;
            bytes += t.wire_size() as f64;
            oids.insert(t.oid.hash());
            values.insert(t.value.key_bits());
            let acc = attrs.entry(t.attr.clone()).or_insert_with(|| {
                // The histogram spans exactly this attribute's slice of
                // the key space, so its 256 buckets resolve value ranges
                // *within* the attribute.
                let (lo, hi) = unistore_store::index::attr_range(&t.attr);
                Acc {
                    count: 0.0,
                    values: FxHashSet::default(),
                    join_values: FxHashSet::default(),
                    hist: Histogram::new(lo, hi, 256),
                    gram_postings: 0.0,
                    grams: FxHashSet::default(),
                }
            });
            acc.count += 1.0;
            acc.values.insert(t.value.key_bits());
            acc.join_values.insert(t.value.semantic_hash());
            acc.hist.add(attr_value_key(&t.attr, &t.value));
            if let Value::Str(s) = &t.value {
                let gs = qgram::qgrams(s);
                acc.gram_postings += gs.len() as f64;
                acc.grams.extend(gs);
            }
        }
        let attrs = attrs
            .into_iter()
            .map(|(k, a)| {
                (
                    k,
                    AttrStats {
                        count: a.count,
                        distinct: a.values.len() as f64,
                        join_distinct: a.join_values.len() as f64,
                        hist: a.hist,
                        gram_postings: a.gram_postings,
                        gram_distinct: a.grams.len() as f64,
                    },
                )
            })
            .collect();
        GlobalStats {
            total,
            oid_distinct: oids.len() as f64,
            value_distinct: values.len() as f64,
            avg_triple_bytes: if total > 0.0 { bytes / total } else { 16.0 },
            attrs,
            net,
        }
    }

    /// Mean triples stored per leaf.
    pub fn triples_per_leaf(&self) -> f64 {
        (self.total / self.net.n_leaves).max(1.0)
    }

    fn attr(&self, attr: &str) -> Option<&AttrStats> {
        self.attrs.get(attr)
    }
}

/// Predicted cost of a physical operator or plan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostVector {
    /// Total messages.
    pub messages: f64,
    /// Critical-path length in hops (latency = depth × hop delay).
    pub depth: f64,
    /// Bytes moved.
    pub bytes: f64,
}

impl CostVector {
    /// Accumulates another operator's cost executed *after* this one.
    pub fn then(&self, next: &CostVector) -> CostVector {
        CostVector {
            messages: self.messages + next.messages,
            depth: self.depth + next.depth,
            bytes: self.bytes + next.bytes,
        }
    }

    /// Predicted latency in milliseconds.
    pub fn latency_ms(&self, hop_ms: f64) -> f64 {
        self.depth * hop_ms
    }

    /// Scalar score for strategy selection: message count dominates
    /// (bandwidth is the scarce resource in the paper's setting), depth
    /// breaks ties toward lower latency.
    pub fn score(&self) -> f64 {
        self.messages + 0.01 * self.depth + 1e-6 * self.bytes
    }
}

/// A priced scan: predicted cost and output cardinality.
#[derive(Clone, Debug)]
pub struct ScanEstimate {
    /// Predicted network cost.
    pub cost: CostVector,
    /// Predicted result rows.
    pub cardinality: f64,
}

/// The cost model over one statistics snapshot.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// The statistics driving the predictions.
    pub stats: GlobalStats,
}

impl CostModel {
    /// Creates the model.
    pub fn new(stats: GlobalStats) -> Self {
        CostModel { stats }
    }

    /// Prices one scan strategy. `limit_hint` enables early-termination
    /// pricing for sequential ranges under LIMIT.
    pub fn scan(&self, s: &ScanStrategy, limit_hint: Option<usize>) -> ScanEstimate {
        let st = &self.stats;
        let log_n = st.net.log_n();
        let per_leaf = st.triples_per_leaf();
        let row_bytes = st.avg_triple_bytes;
        match s {
            ScanStrategy::OidLookup { .. } => {
                let card = (st.total / st.oid_distinct.max(1.0)).max(1.0);
                ScanEstimate {
                    cost: CostVector {
                        messages: log_n + 1.0,
                        depth: log_n + 1.0,
                        bytes: card * row_bytes,
                    },
                    cardinality: card,
                }
            }
            ScanStrategy::AttrValueLookup { attr, .. } => {
                let card = st.attr(attr).map_or(0.0, |a| a.count / a.distinct.max(1.0));
                ScanEstimate {
                    cost: CostVector {
                        messages: log_n + 1.0,
                        depth: log_n + 1.0,
                        bytes: card * row_bytes,
                    },
                    cardinality: card,
                }
            }
            ScanStrategy::AttrRange { attr, lo, hi, algo } => {
                let card = match st.attr(attr) {
                    None => 0.0,
                    Some(a) => {
                        let (klo, khi) = attr_value_range(attr, lo.as_ref(), hi.as_ref());
                        a.hist.estimate_range(klo, khi).max(1.0)
                    }
                };
                let leaves = (card / per_leaf).ceil().clamp(1.0, st.net.n_leaves);
                let (messages, depth, eff_card) = match algo {
                    RangeAlgo::Parallel => (log_n + 2.0 * leaves, log_n + 2.0, card),
                    RangeAlgo::Sequential => {
                        // Early termination: visit only the leaves needed
                        // to fill the limit.
                        let eff_leaves = match limit_hint {
                            Some(n) if card > 0.0 => {
                                (n as f64 * leaves / card).ceil().clamp(1.0, leaves)
                            }
                            _ => leaves,
                        };
                        let eff_card =
                            if eff_leaves < leaves { card * eff_leaves / leaves } else { card };
                        (log_n + 2.0 * eff_leaves, log_n + eff_leaves + 1.0, eff_card)
                    }
                };
                ScanEstimate {
                    cost: CostVector { messages, depth, bytes: eff_card * row_bytes },
                    cardinality: eff_card,
                }
            }
            ScanStrategy::AttrPrefix { attr, prefix, .. } => {
                let card = match st.attr(attr) {
                    None => 0.0,
                    Some(a) => {
                        let (klo, khi) = unistore_store::index::attr_prefix_range(attr, prefix);
                        a.hist.estimate_range(klo, khi).max(1.0)
                    }
                };
                let leaves = (card / per_leaf).ceil().clamp(1.0, st.net.n_leaves);
                ScanEstimate {
                    cost: CostVector {
                        messages: log_n + 2.0 * leaves,
                        depth: log_n + 2.0,
                        bytes: card * row_bytes,
                    },
                    cardinality: card,
                }
            }
            ScanStrategy::QGram { attr, target, k } => {
                let grams = (target.len() + qgram::QGRAM_Q - 1) as f64;
                let (candidates, verified) = match st.attr(attr) {
                    None => (0.0, 0.0),
                    Some(a) => {
                        let posting = a.gram_postings / a.gram_distinct.max(1.0);
                        let candidates = (grams * posting).min(a.count);
                        // Verified matches: crude selectivity — strings
                        // within distance k of one target are rare.
                        let sel = ((*k as f64 + 1.0) / a.distinct.max(1.0)).min(1.0);
                        (candidates, (a.count * sel).max(1.0))
                    }
                };
                ScanEstimate {
                    cost: CostVector {
                        messages: grams * (log_n + 1.0),
                        depth: log_n + 1.0,
                        bytes: candidates * row_bytes,
                    },
                    cardinality: verified,
                }
            }
            ScanStrategy::ValueLookup { .. } => {
                let card = (st.total / st.value_distinct.max(1.0)).max(1.0);
                ScanEstimate {
                    cost: CostVector {
                        messages: log_n + 1.0,
                        depth: log_n + 1.0,
                        bytes: card * row_bytes,
                    },
                    cardinality: card,
                }
            }
            ScanStrategy::FullScan { .. } => {
                let leaves = st.net.n_leaves;
                ScanEstimate {
                    cost: CostVector {
                        messages: 2.0 * leaves,
                        depth: log_n + 2.0,
                        bytes: st.total * row_bytes,
                    },
                    cardinality: st.total,
                }
            }
        }
    }

    /// Picks the cheapest scan among candidates. Returns the index into
    /// `candidates` plus the estimate.
    pub fn choose_scan(
        &self,
        candidates: &[ScanStrategy],
        limit_hint: Option<usize>,
    ) -> (usize, ScanEstimate) {
        assert!(!candidates.is_empty(), "no scan candidates");
        candidates
            .iter()
            .enumerate()
            .map(|(i, s)| (i, self.scan(s, limit_hint)))
            .min_by(|(_, a), (_, b)| a.cost.score().total_cmp(&b.cost.score()))
            .unwrap()
    }

    /// Prices a join given the left cardinality and the right side's
    /// best independent scan. Fetch join costs one lookup per distinct
    /// left binding.
    pub fn join(
        &self,
        left_card: f64,
        right_best: &ScanEstimate,
        fetch_possible: bool,
    ) -> (JoinStrategy, CostVector) {
        let log_n = self.stats.net.log_n();
        let collect = right_best.cost;
        if !fetch_possible {
            return (JoinStrategy::Collect, collect);
        }
        let fetch = CostVector {
            messages: left_card.max(1.0) * (log_n + 1.0),
            depth: log_n + 1.0,
            bytes: right_best.cardinality.min(left_card) * self.stats.avg_triple_bytes,
        };
        if fetch.score() < collect.score() {
            (JoinStrategy::Fetch, fetch)
        } else {
            (JoinStrategy::Collect, collect)
        }
    }

    /// Prices a Bloom-filtered semi-join pushdown of the right side's
    /// best scan: the message structure and critical path are the
    /// collect scan's (the filter rides the existing request messages),
    /// but every request grows by the filter's wire size and the leaves
    /// reply with only the rows whose join key appears on the left —
    /// plus the filter's false positives.
    ///
    /// `left_distinct` is the number of distinct join keys on the
    /// materialized side, `right_distinct` the estimated distinct join
    /// keys in the scanned region (drives the semi-join selectivity
    /// `min(1, left/right)`), `filter_bytes` the encoded filter size and
    /// `fpr` its false-positive rate.
    pub fn semi_join(
        &self,
        left_distinct: f64,
        right_distinct: f64,
        right_best: &ScanEstimate,
        filter_bytes: f64,
        fpr: f64,
    ) -> CostVector {
        let sel = (left_distinct / right_distinct.max(1.0) + fpr).min(1.0);
        let surviving = right_best.cardinality * sel;
        CostVector {
            messages: right_best.cost.messages,
            depth: right_best.cost.depth,
            bytes: right_best.cost.messages * filter_bytes
                + surviving * self.stats.avg_triple_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_vql::parse;

    fn sample_triples() -> Vec<Triple> {
        let mut ts = Vec::new();
        for i in 0..200 {
            ts.push(Triple::new(&format!("p{i}"), "name", Value::str(&format!("person-{i}"))));
            ts.push(Triple::new(&format!("p{i}"), "age", Value::Int(20 + (i % 50) as i64)));
            ts.push(Triple::new(
                &format!("p{i}"),
                "city",
                Value::str(if i % 10 == 0 { "geneva" } else { "zurich" }),
            ));
        }
        ts
    }

    fn model() -> CostModel {
        let net = NetParams { n_peers: 64.0, n_leaves: 64.0, replication: 1.0, hop_ms: 40.0 };
        CostModel::new(GlobalStats::build(&sample_triples(), net))
    }

    #[test]
    fn stats_aggregate_correctly() {
        let m = model();
        assert_eq!(m.stats.total, 600.0);
        assert_eq!(m.stats.oid_distinct, 200.0);
        let age = &m.stats.attrs[&Arc::<str>::from("age")];
        assert_eq!(age.count, 200.0);
        assert_eq!(age.distinct, 50.0);
        let city = &m.stats.attrs[&Arc::<str>::from("city")];
        assert_eq!(city.distinct, 2.0);
        assert!(city.gram_postings > 0.0);
    }

    #[test]
    fn lookup_is_logarithmic() {
        let m = model();
        let e = m.scan(
            &ScanStrategy::AttrValueLookup { attr: "age".into(), value: Value::Int(30) },
            None,
        );
        let log_n = 6.0;
        assert_eq!(e.cost.messages, log_n + 1.0);
        assert_eq!(e.cardinality, 4.0); // 200 / 50 distinct
    }

    #[test]
    fn range_cost_scales_with_selectivity() {
        let m = model();
        let narrow = m.scan(
            &ScanStrategy::AttrRange {
                attr: "age".into(),
                lo: Some(Value::Int(20)),
                hi: Some(Value::Int(22)),
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        let wide = m.scan(
            &ScanStrategy::AttrRange {
                attr: "age".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        assert!(wide.cardinality > narrow.cardinality);
        assert!(wide.cost.messages > narrow.cost.messages);
    }

    #[test]
    fn sequential_with_limit_visits_fewer_leaves() {
        let m = model();
        let strat = |algo| ScanStrategy::AttrRange { attr: "age".into(), lo: None, hi: None, algo };
        let seq_all = m.scan(&strat(RangeAlgo::Sequential), None);
        let seq_lim = m.scan(&strat(RangeAlgo::Sequential), Some(3));
        assert!(seq_lim.cost.messages < seq_all.cost.messages);
        // And cheap enough to beat the parallel shower.
        let par = m.scan(&strat(RangeAlgo::Parallel), Some(3));
        assert!(seq_lim.cost.score() < par.cost.score());
    }

    #[test]
    fn choose_scan_prefers_exact_lookup() {
        let m = model();
        let q = parse("SELECT ?a WHERE {(?a,'age',2006)}").unwrap();
        let cands = crate::strategy::scan_candidates(&q.patterns[0], &q.filters);
        let (i, _) = m.choose_scan(&cands, None);
        assert!(matches!(cands[i], ScanStrategy::AttrValueLookup { .. }));
    }

    #[test]
    fn qgram_beats_naive_on_large_attr_and_loses_on_tiny() {
        let m = model();
        // 'name' has 200 long-ish strings; q-gram should beat a full
        // attribute sweep for a short target.
        let qg = m.scan(
            &ScanStrategy::QGram { attr: "name".into(), target: "person-7".into(), k: 1 },
            None,
        );
        let naive = m.scan(
            &ScanStrategy::AttrRange {
                attr: "name".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        // The decision flips with scale; here both are priced — make
        // sure the estimates are finite and ordered sanely.
        assert!(qg.cost.messages > 0.0 && naive.cost.messages > 0.0);
        assert!(qg.cardinality <= naive.cardinality);
    }

    #[test]
    fn fetch_join_wins_for_small_left() {
        let m = model();
        let right = m.scan(
            &ScanStrategy::AttrRange {
                attr: "name".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        let (strat_small, _) = m.join(2.0, &right, true);
        assert_eq!(strat_small, JoinStrategy::Fetch);
        let (strat_big, _) = m.join(10_000.0, &right, true);
        assert_eq!(strat_big, JoinStrategy::Collect);
        let (forced, _) = m.join(2.0, &right, false);
        assert_eq!(forced, JoinStrategy::Collect);
    }

    #[test]
    fn semi_join_beats_collect_on_selective_left_only() {
        let m = model();
        let right = m.scan(
            &ScanStrategy::AttrRange {
                attr: "name".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        // 2 of 200 names survive: bytes shrink (reply side collapses;
        // the remaining cost is the ~16-byte filter riding each
        // request), messages and depth unchanged.
        let semi = m.semi_join(2.0, 200.0, &right, 16.0, 0.01);
        assert_eq!(semi.messages, right.cost.messages);
        assert_eq!(semi.depth, right.cost.depth);
        assert!(semi.bytes < right.cost.bytes / 2.0, "selective semi-join ships a fraction");
        assert!(semi.score() < right.cost.score());
        // Left covers everything: the filter is pure overhead.
        let futile = m.semi_join(200.0, 200.0, &right, 16.0, 0.01);
        assert!(futile.bytes > right.cost.bytes);
        assert!(futile.score() > right.cost.score());
    }

    #[test]
    fn unknown_attr_estimates_zero() {
        let m = model();
        let e = m.scan(
            &ScanStrategy::AttrRange {
                attr: "ghost".into(),
                lo: None,
                hi: None,
                algo: RangeAlgo::Parallel,
            },
            None,
        );
        assert_eq!(e.cardinality, 0.0);
    }
}

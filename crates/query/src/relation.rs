//! The tabular intermediate representation.
//!
//! Plans pass relations between operators — and, MQP-style, between
//! peers, which is why [`Relation`] is wire-encodable: shipping a plan
//! with embedded partial results has an honest byte cost.

use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use unistore_store::Value;
use unistore_util::wire::{Wire, WireError};
use unistore_util::FxHashMap;

/// A bag of rows over a variable schema.
#[derive(Clone, Debug, PartialEq)]
pub struct Relation {
    /// Column names (VQL variables).
    pub schema: Vec<Arc<str>>,
    /// Rows, each as long as the schema.
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Empty relation over a schema.
    pub fn empty(schema: Vec<Arc<str>>) -> Relation {
        Relation { schema, rows: Vec::new() }
    }

    /// Column index of a variable.
    pub fn col(&self, var: &str) -> Option<usize> {
        self.schema.iter().position(|c| c.as_ref() == var)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Projects onto the given variables. Variables missing from the
    /// schema are dropped from the result: a plan can arrive off the
    /// wire, so a schema mismatch must degrade, not crash the node.
    pub fn project(&self, vars: &[Arc<str>]) -> Relation {
        let kept: Vec<(Arc<str>, usize)> =
            vars.iter().filter_map(|v| self.col(v).map(|i| (v.clone(), i))).collect();
        Relation {
            schema: kept.iter().map(|(v, _)| v.clone()).collect(),
            rows: self
                .rows
                .iter()
                .map(|r| kept.iter().map(|&(_, i)| r[i].clone()).collect())
                .collect(),
        }
    }

    /// Natural (hash) join on all shared variables. With no shared
    /// variables this degenerates to the Cartesian product.
    pub fn join(&self, other: &Relation) -> Relation {
        let shared: Vec<Arc<str>> =
            self.schema.iter().filter(|v| other.col(v).is_some()).cloned().collect();
        let mut schema = self.schema.clone();
        for v in &other.schema {
            if self.col(v).is_none() {
                schema.push(v.clone());
            }
        }
        let other_extra: Vec<usize> = other
            .schema
            .iter()
            .enumerate()
            .filter(|(_, v)| self.col(v).is_none())
            .map(|(i, _)| i)
            .collect();

        let mut rows = Vec::new();
        if shared.is_empty() {
            for l in &self.rows {
                for r in &other.rows {
                    let mut row = l.clone();
                    row.extend(other_extra.iter().map(|&i| r[i].clone()));
                    rows.push(row);
                }
            }
            return Relation { schema, rows };
        }

        // `shared` holds exactly the variables present in both schemas,
        // so the lookups always hit; filter_map keeps that invariant
        // local instead of panicking if it ever breaks.
        let l_keys: Vec<usize> = shared.iter().filter_map(|v| self.col(v)).collect();
        let r_keys: Vec<usize> = shared.iter().filter_map(|v| other.col(v)).collect();
        // Hash the smaller side.
        let mut table: FxHashMap<Vec<u64>, Vec<usize>> = FxHashMap::default();
        for (i, r) in other.rows.iter().enumerate() {
            let key: Vec<u64> = r_keys.iter().map(|&k| value_hash(&r[k])).collect();
            table.entry(key).or_default().push(i);
        }
        for l in &self.rows {
            let key: Vec<u64> = l_keys.iter().map(|&k| value_hash(&l[k])).collect();
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    let r = &other.rows[ri];
                    // Verify (hash collisions, numeric equality).
                    let eq = l_keys.iter().zip(&r_keys).all(|(&lk, &rk)| l[lk].eq_values(&r[rk]));
                    if eq {
                        let mut row = l.clone();
                        row.extend(other_extra.iter().map(|&i| r[i].clone()));
                        rows.push(row);
                    }
                }
            }
        }
        Relation { schema, rows }
    }

    /// Removes duplicate rows (first occurrence wins).
    pub fn distinct(&mut self) {
        let mut seen: unistore_util::FxHashSet<Vec<u64>> = Default::default();
        let rows = std::mem::take(&mut self.rows);
        self.rows =
            rows.into_iter().filter(|r| seen.insert(r.iter().map(value_hash).collect())).collect();
    }

    /// Union with another relation over the same schema (columns are
    /// aligned by name). An incompatible fragment — one whose schema
    /// does not contain the same variables — is dropped whole: result
    /// fragments arrive from remote peers, and a malformed one must
    /// degrade the answer, not crash the node.
    pub fn union(&mut self, other: Relation) {
        if self.schema == other.schema {
            self.rows.extend(other.rows);
            return;
        }
        let aligned: Option<Vec<usize>> = self.schema.iter().map(|v| other.col(v)).collect();
        let Some(idx) = aligned else { return };
        if self.schema.len() != other.schema.len() {
            return;
        }
        self.rows.extend(
            other.rows.into_iter().map(|r| idx.iter().map(|&i| r[i].clone()).collect::<Vec<_>>()),
        );
    }
}

/// Hash of a value consistent with `eq_values` (numeric classes collapse
/// onto the f64 encoding). Delegates to [`Value::semantic_hash`] — the
/// same hash `Triple::field_hash` answers at the storage leaves, which
/// is what makes Bloom-filtered semi-join scans conservative; keep them
/// one function.
pub fn value_hash(v: &Value) -> u64 {
    v.semantic_hash()
}

impl Wire for Relation {
    fn encode(&self, buf: &mut BytesMut) {
        let schema: Vec<Arc<str>> = self.schema.clone();
        schema.encode(buf);
        unistore_util::wire::put_varint(buf, self.rows.len() as u64);
        for r in &self.rows {
            debug_assert_eq!(r.len(), self.schema.len());
            for v in r {
                v.encode(buf);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let schema = Vec::<Arc<str>>::decode(buf)?;
        let n = unistore_util::wire::get_varint(buf)?;
        if n > (1 << 24) {
            return Err(WireError::BadLength(n));
        }
        let mut rows = Vec::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            let mut row = Vec::with_capacity(schema.len().min(64));
            for _ in 0..schema.len() {
                row.push(Value::decode(buf)?);
            }
            rows.push(row);
        }
        Ok(Relation { schema, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[&str], rows: &[&[Value]]) -> Relation {
        Relation {
            schema: schema.iter().map(|s| Arc::from(*s)).collect(),
            rows: rows.iter().map(|r| r.to_vec()).collect(),
        }
    }

    #[test]
    fn project_reorders_columns() {
        let r = rel(&["a", "b"], &[&[Value::Int(1), Value::str("x")]]);
        let p = r.project(&[Arc::from("b"), Arc::from("a")]);
        assert_eq!(p.schema[0].as_ref(), "b");
        assert_eq!(p.rows[0], vec![Value::str("x"), Value::Int(1)]);
    }

    #[test]
    fn join_on_shared_var() {
        let l = rel(
            &["a", "name"],
            &[&[Value::str("a12"), Value::str("alice")], &[Value::str("a13"), Value::str("bob")]],
        );
        let r = rel(
            &["a", "age"],
            &[&[Value::str("a12"), Value::Int(30)], &[Value::str("a99"), Value::Int(50)]],
        );
        let j = l.join(&r);
        assert_eq!(j.schema.len(), 3);
        assert_eq!(j.len(), 1);
        assert_eq!(j.rows[0], vec![Value::str("a12"), Value::str("alice"), Value::Int(30)]);
    }

    #[test]
    fn join_without_shared_is_cartesian() {
        let l = rel(&["a"], &[&[Value::Int(1)], &[Value::Int(2)]]);
        let r = rel(&["b"], &[&[Value::Int(3)], &[Value::Int(4)]]);
        assert_eq!(l.join(&r).len(), 4);
    }

    #[test]
    fn join_numeric_classes_unify() {
        let l = rel(&["x"], &[&[Value::Int(3)]]);
        let r = rel(&["x"], &[&[Value::Float(3.0)]]);
        assert_eq!(l.join(&r).len(), 1, "Int 3 must join Float 3.0");
    }

    #[test]
    fn multi_var_join() {
        let l =
            rel(&["a", "b"], &[&[Value::Int(1), Value::Int(2)], &[Value::Int(1), Value::Int(3)]]);
        let r = rel(&["b", "a"], &[&[Value::Int(2), Value::Int(1)]]);
        let j = l.join(&r);
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let mut r = rel(&["a"], &[&[Value::Int(1)], &[Value::Int(1)], &[Value::Int(2)]]);
        r.distinct();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn union_aligns_columns() {
        let mut a = rel(&["x", "y"], &[&[Value::Int(1), Value::Int(2)]]);
        let b = rel(&["y", "x"], &[&[Value::Int(20), Value::Int(10)]]);
        a.union(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.rows[1], vec![Value::Int(10), Value::Int(20)]);
    }

    #[test]
    fn wire_roundtrip() {
        let r = rel(
            &["a", "v"],
            &[&[Value::str("a12"), Value::Int(2006)], &[Value::str("v34"), Value::Float(0.5)]],
        );
        let b = r.to_bytes();
        assert_eq!(b.len(), r.wire_size());
        assert_eq!(Relation::from_bytes(&b).unwrap(), r);
    }

    #[test]
    fn empty_relation_roundtrip() {
        let r = Relation::empty(vec![Arc::from("x")]);
        let b = r.to_bytes();
        assert_eq!(Relation::from_bytes(&b).unwrap(), r);
    }
}

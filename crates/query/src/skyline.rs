//! The skyline operator.
//!
//! Paper §2 example: `ORDER BY SKYLINE OF ?age MIN, ?cnt MAX` — "a
//! skyline of authors that reaches from the youngest authors to those
//! authors published the most publications". Block-nested-loops over the
//! Pareto dominance relation.

use std::cmp::Ordering;

use unistore_store::Value;
use unistore_vql::ast::{SkyDir, SkyItem};

use crate::relation::Relation;

/// Whether `a` dominates `b` under the preferences: at least as good in
/// every dimension, strictly better in one.
pub fn dominates(a: &[Value], b: &[Value], cols: &[(usize, SkyDir)]) -> bool {
    let mut strictly_better = false;
    for &(c, dir) in cols {
        let ord = a[c].cmp_values(&b[c]);
        let good = match dir {
            SkyDir::Min => ord != Ordering::Greater,
            SkyDir::Max => ord != Ordering::Less,
        };
        if !good {
            return false;
        }
        if ord != Ordering::Equal {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Reduces a relation to its skyline (block-nested-loops).
pub fn skyline(rel: &mut Relation, items: &[SkyItem]) {
    let cols: Vec<(usize, SkyDir)> =
        items.iter().filter_map(|s| rel.col(&s.var).map(|c| (c, s.dir))).collect();
    if cols.is_empty() {
        return;
    }
    let rows = std::mem::take(&mut rel.rows);
    let mut window: Vec<Vec<Value>> = Vec::new();
    'next: for row in rows {
        let mut i = 0;
        while i < window.len() {
            if dominates(&window[i], &row, &cols) {
                continue 'next; // dominated: drop the candidate
            }
            if dominates(&row, &window[i], &cols) {
                window.swap_remove(i); // candidate kills a window row
            } else {
                i += 1;
            }
        }
        window.push(row);
    }
    rel.rows = window;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn items() -> Vec<SkyItem> {
        vec![
            SkyItem { var: Arc::from("age"), dir: SkyDir::Min },
            SkyItem { var: Arc::from("cnt"), dir: SkyDir::Max },
        ]
    }

    fn rel(rows: &[(i64, i64)]) -> Relation {
        Relation {
            schema: vec![Arc::from("age"), Arc::from("cnt")],
            rows: rows.iter().map(|&(a, c)| vec![Value::Int(a), Value::Int(c)]).collect(),
        }
    }

    #[test]
    fn paper_example_semantics() {
        // Young authors with many publications dominate old authors
        // with few.
        let mut r = rel(&[
            (30, 10), // in skyline
            (40, 5),  // dominated by (30,10)
            (25, 3),  // in skyline (youngest with 3+)
            (50, 20), // in skyline (most publications)
            (50, 19), // dominated by (50,20)
        ]);
        skyline(&mut r, &items());
        let mut got: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|row| (row[0].as_f64().unwrap() as i64, row[1].as_f64().unwrap() as i64))
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![(25, 3), (30, 10), (50, 20)]);
    }

    #[test]
    fn duplicates_survive_together() {
        // Equal points don't dominate each other.
        let mut r = rel(&[(30, 10), (30, 10)]);
        skyline(&mut r, &items());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn single_dimension_min() {
        let mut r = rel(&[(3, 0), (1, 0), (2, 0)]);
        skyline(&mut r, &[SkyItem { var: Arc::from("age"), dir: SkyDir::Min }]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(1));
    }

    #[test]
    fn dominance_relation() {
        let cols = [(0, SkyDir::Min), (1, SkyDir::Max)];
        let a = vec![Value::Int(1), Value::Int(5)];
        let b = vec![Value::Int(2), Value::Int(5)];
        assert!(dominates(&a, &b, &cols));
        assert!(!dominates(&b, &a, &cols));
        assert!(!dominates(&a, &a, &cols), "no self-domination");
    }

    proptest! {
        /// Skyline invariants: no survivor dominates another survivor;
        /// every removed row is dominated by some survivor.
        #[test]
        fn prop_skyline_sound_and_complete(
            rows in proptest::collection::vec((0i64..20, 0i64..20), 1..40)
        ) {
            let original = rel(&rows);
            let mut r = original.clone();
            let its = items();
            skyline(&mut r, &its);
            let cols = [(0, SkyDir::Min), (1, SkyDir::Max)];
            // Soundness: mutual non-domination among survivors.
            for a in &r.rows {
                for b in &r.rows {
                    prop_assert!(!dominates(a, b, &cols) || a == b || !r.rows.contains(a) );
                }
            }
            for a in &r.rows {
                for b in &r.rows {
                    if !std::ptr::eq(a, b) {
                        prop_assert!(!dominates(a, b, &cols),
                            "survivor {a:?} dominates survivor {b:?}");
                    }
                }
            }
            // Completeness: each dropped row is dominated by a survivor.
            for row in &original.rows {
                let survived = r.rows.contains(row);
                if !survived {
                    prop_assert!(
                        r.rows.iter().any(|s| dominates(s, row, &cols)),
                        "dropped row {row:?} not dominated"
                    );
                }
            }
        }
    }
}

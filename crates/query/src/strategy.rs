//! Physical operator alternatives.
//!
//! Paper §2: *"For each logical operator there are several physical
//! implementations available … They differ in the kind of used indexes,
//! applied routing strategy, parallelism, etc."* This module enumerates
//! the alternatives; [`crate::cost`] prices them; the executor picks.

use unistore_store::Value;
use unistore_vql::{Expr, Term, TriplePattern};

use crate::eval::{range_bounds_for, similarity_for};

/// Which range algorithm a range-based scan uses (maps to the two
/// P-Grid range implementations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RangeAlgo {
    /// Shower: parallel trie fan-out. Low latency, more messages.
    Parallel,
    /// Leaf walk in key order. Fewer parallel messages, linear latency.
    Sequential,
}

/// Physical strategies for resolving one triple pattern.
#[derive(Clone, Debug, PartialEq)]
pub enum ScanStrategy {
    /// Exact lookup in the OID index (subject is a literal).
    OidLookup {
        /// The object id.
        oid: String,
    },
    /// Exact lookup in the A#v index (attribute and value literal).
    AttrValueLookup {
        /// Attribute name.
        attr: String,
        /// Value to match.
        value: Value,
    },
    /// Range scan in the A#v index (attribute literal; value bounded by
    /// filters, or unbounded for a whole-attribute scan).
    AttrRange {
        /// Attribute name.
        attr: String,
        /// Inclusive lower bound.
        lo: Option<Value>,
        /// Inclusive upper bound.
        hi: Option<Value>,
        /// Range algorithm.
        algo: RangeAlgo,
    },
    /// Prefix scan in the A#v index: the order-preserving encoding maps
    /// a string prefix to a contiguous key range (paper §2: native
    /// prefix/substring search).
    AttrPrefix {
        /// Attribute name.
        attr: String,
        /// Required value prefix.
        prefix: String,
        /// Range algorithm.
        algo: RangeAlgo,
    },
    /// Similarity scan via the q-gram index: fetch gram buckets, count
    /// filter, verify with edit distance (paper ref [6]).
    QGram {
        /// Attribute name.
        attr: String,
        /// Target string.
        target: String,
        /// Edit-distance threshold (inclusive).
        k: usize,
    },
    /// Exact lookup in the attribute-agnostic v index (value literal,
    /// attribute variable).
    ValueLookup {
        /// Value to match.
        value: Value,
    },
    /// Scan of the entire A#v index (nothing usable bound). The
    /// fallback of last resort.
    FullScan {
        /// Range algorithm.
        algo: RangeAlgo,
    },
}

impl ScanStrategy {
    /// Short display name (experiment output).
    pub fn name(&self) -> &'static str {
        match self {
            ScanStrategy::OidLookup { .. } => "oid-lookup",
            ScanStrategy::AttrValueLookup { .. } => "av-lookup",
            ScanStrategy::AttrRange { algo: RangeAlgo::Parallel, .. } => "av-range-par",
            ScanStrategy::AttrRange { algo: RangeAlgo::Sequential, .. } => "av-range-seq",
            ScanStrategy::AttrPrefix { .. } => "av-prefix",
            ScanStrategy::QGram { .. } => "qgram",
            ScanStrategy::ValueLookup { .. } => "v-lookup",
            ScanStrategy::FullScan { .. } => "full-scan",
        }
    }
}

/// Physical strategies for a join once the left side is materialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Resolve the right pattern independently (its best scan), then
    /// hash-join where the plan currently lives.
    Collect,
    /// Fetch join: for each distinct binding of the shared variable,
    /// issue a targeted lookup for the right pattern (index nested
    /// loops over the DHT).
    Fetch,
    /// Semi-join pushdown: run the right side's best scan, but ship a
    /// Bloom filter over the left side's distinct join keys with the
    /// request so the leaves drop non-matching triples before replying.
    /// Same message structure as [`JoinStrategy::Collect`], a fraction
    /// of its bytes.
    SemiJoin,
}

/// Enumerates the applicable scan strategies for a pattern, given the
/// query's filters (used for bound extraction). Ordered from most to
/// least specific; the cost model makes the actual choice.
pub fn scan_candidates(pattern: &TriplePattern, filters: &[Expr]) -> Vec<ScanStrategy> {
    let mut out = Vec::new();
    if let Some(Value::Str(oid)) = pattern.subject.as_lit() {
        out.push(ScanStrategy::OidLookup { oid: oid.to_string() });
    }
    match (&pattern.attr, &pattern.value) {
        (Term::Lit(Value::Str(attr)), Term::Lit(v)) => {
            out.push(ScanStrategy::AttrValueLookup { attr: attr.to_string(), value: v.clone() });
        }
        (Term::Lit(Value::Str(attr)), Term::Var(var)) => {
            // Similarity predicate on the value variable? The q-gram
            // index is only *complete* when every true match must share
            // at least one gram with the target: |t| - 1 - (k-1)·q ≥ 1.
            // Below that (short targets / large k) matches like
            // ed("ICDE","CDR") = 2 share zero grams and would be lost —
            // the planner must fall back to scanning.
            if let Some((target, k)) = filters.iter().find_map(|f| similarity_for(f, var)) {
                let guaranteed = target.len() as isize
                    - 1
                    - (k as isize - 1) * unistore_store::qgram::QGRAM_Q as isize
                    >= 1;
                if guaranteed {
                    out.push(ScanStrategy::QGram { attr: attr.to_string(), target, k });
                }
            }
            // Prefix predicate → contiguous key range (native support).
            if let Some(p) = filters.iter().find_map(|f| crate::eval::prefix_for(f, var)) {
                out.push(ScanStrategy::AttrPrefix {
                    attr: attr.to_string(),
                    prefix: p,
                    algo: RangeAlgo::Parallel,
                });
            }
            // Range bounds from filters (possibly unbounded).
            let (lo, hi) = filters.iter().fold((None, None), |(lo, hi), f| {
                let (l2, h2) = range_bounds_for(f, var);
                (tighter(lo, l2, true), tighter(hi, h2, false))
            });
            for algo in [RangeAlgo::Parallel, RangeAlgo::Sequential] {
                out.push(ScanStrategy::AttrRange {
                    attr: attr.to_string(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                    algo,
                });
            }
        }
        (Term::Var(_), Term::Lit(v)) => {
            out.push(ScanStrategy::ValueLookup { value: v.clone() });
        }
        (Term::Var(_), Term::Var(_)) => {}
        // Attribute literal that is not a string (malformed but legal
        // grammar-wise): fall through to FullScan below.
        (Term::Lit(_), _) => {}
    }
    if out.is_empty() {
        out.push(ScanStrategy::FullScan { algo: RangeAlgo::Parallel });
    }
    out
}

fn tighter(a: Option<Value>, b: Option<Value>, is_lo: bool) -> Option<Value> {
    use std::cmp::Ordering::*;
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => {
            let keep_x = match x.cmp_values(&y) {
                Greater => is_lo,
                Less => !is_lo,
                Equal => true,
            };
            Some(if keep_x { x } else { y })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_vql::parse;

    fn pattern_and_filters(src: &str) -> (TriplePattern, Vec<Expr>) {
        let q = parse(src).unwrap();
        (q.patterns[0].clone(), q.filters.clone())
    }

    #[test]
    fn literal_subject_offers_oid_lookup() {
        let (p, f) = pattern_and_filters("SELECT ?v WHERE {('a12','year',?v)}");
        let c = scan_candidates(&p, &f);
        assert!(matches!(c[0], ScanStrategy::OidLookup { .. }));
    }

    #[test]
    fn attr_and_value_literal_offer_exact_lookup() {
        let (p, f) = pattern_and_filters("SELECT ?a WHERE {(?a,'year',2006)}");
        let c = scan_candidates(&p, &f);
        assert!(c.iter().any(|s| matches!(s, ScanStrategy::AttrValueLookup { .. })));
    }

    #[test]
    fn value_var_with_bounds_offers_both_range_algos() {
        let (p, f) = pattern_and_filters(
            "SELECT ?v WHERE {(?a,'year',?v) FILTER ?v >= 2000 AND ?v <= 2006}",
        );
        let c = scan_candidates(&p, &f);
        let ranges: Vec<_> = c
            .iter()
            .filter_map(|s| match s {
                ScanStrategy::AttrRange { lo, hi, algo, .. } => Some((lo, hi, algo)),
                _ => None,
            })
            .collect();
        assert_eq!(ranges.len(), 2, "parallel and sequential variants");
        assert_eq!(ranges[0].0, &Some(Value::Int(2000)));
        assert_eq!(ranges[0].1, &Some(Value::Int(2006)));
    }

    #[test]
    fn similarity_filter_offers_qgram_when_guaranteed() {
        // k=1 on a 4-char target: threshold 4-1-0 = 3 ≥ 1 → offered.
        let (p, f) =
            pattern_and_filters("SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<2}");
        let c = scan_candidates(&p, &f);
        assert!(
            c.iter().any(|s| matches!(s, ScanStrategy::QGram { k: 1, .. })),
            "qgram candidate missing: {c:?}"
        );
        // Naive fallback still present (range over the whole attribute).
        assert!(c.iter().any(|s| matches!(s, ScanStrategy::AttrRange { lo: None, hi: None, .. })));
        // Long target with k=2: 12-1-3 = 8 ≥ 1 → offered.
        let (p, f) = pattern_and_filters(
            "SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'Similarity Qu')<3}",
        );
        assert!(scan_candidates(&p, &f)
            .iter()
            .any(|s| matches!(s, ScanStrategy::QGram { k: 2, .. })));
    }

    #[test]
    fn similarity_without_gram_guarantee_not_offered() {
        // k=2 on a 4-char target: threshold 4-1-3 = 0 → a true match may
        // share no grams; the index would drop it. Must not be offered.
        let (p, f) =
            pattern_and_filters("SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<3}");
        let c = scan_candidates(&p, &f);
        assert!(
            !c.iter().any(|s| matches!(s, ScanStrategy::QGram { .. })),
            "incomplete qgram plan offered: {c:?}"
        );
        // The naive scan fallback keeps the query answerable.
        assert!(c.iter().any(|s| matches!(s, ScanStrategy::AttrRange { .. })));
    }

    #[test]
    fn prefix_filter_offers_prefix_scan() {
        let (p, f) =
            pattern_and_filters("SELECT ?s WHERE {(?c,'series',?s) FILTER prefix(?s,'IC')}");
        let c = scan_candidates(&p, &f);
        assert!(
            c.iter().any(|s| matches!(s, ScanStrategy::AttrPrefix { .. })),
            "prefix candidate missing: {c:?}"
        );
    }

    #[test]
    fn value_literal_with_attr_var_offers_value_lookup() {
        let (p, f) = pattern_and_filters("SELECT ?attr WHERE {(?a,?attr,2006)}");
        let c = scan_candidates(&p, &f);
        assert!(matches!(c[0], ScanStrategy::ValueLookup { .. }));
    }

    #[test]
    fn nothing_bound_falls_back_to_full_scan() {
        let (p, f) = pattern_and_filters("SELECT ?a WHERE {(?a,?attr,?v)}");
        let c = scan_candidates(&p, &f);
        assert_eq!(c, vec![ScanStrategy::FullScan { algo: RangeAlgo::Parallel }]);
    }

    #[test]
    fn oid_plus_attr_offers_multiple_indexes() {
        // Both the OID index and the A#v index can answer; the cost
        // model decides (paper: "several implementations … each
        // beneficial in special situations").
        let (p, f) = pattern_and_filters("SELECT * WHERE {('a12','year',2006)}");
        let c = scan_candidates(&p, &f);
        assert!(c.len() >= 2);
    }
}

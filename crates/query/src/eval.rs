//! Filter-expression evaluation over relation rows.

use unistore_store::qgram::edit_distance;
use unistore_store::Value;
use unistore_vql::{CmpOp, Expr, Scalar};

use crate::relation::Relation;

/// Evaluates a scalar against one row. Returns `None` when a variable is
/// unbound in this relation or `edist` gets non-string arguments.
pub fn eval_scalar(s: &Scalar, rel: &Relation, row: &[Value]) -> Option<Value> {
    match s {
        Scalar::Var(v) => rel.col(v).map(|i| row[i].clone()),
        Scalar::Lit(v) => Some(v.clone()),
        Scalar::EDist(a, b) => {
            let va = eval_scalar(a, rel, row)?;
            let vb = eval_scalar(b, rel, row)?;
            let (sa, sb) = (va.as_str()?, vb.as_str()?);
            Some(Value::Int(edit_distance(sa, sb) as i64))
        }
    }
}

/// Evaluates a boolean filter against one row. Unbound variables make
/// the predicate false (SQL-style unknown → filtered out).
pub fn eval_expr(e: &Expr, rel: &Relation, row: &[Value]) -> bool {
    match e {
        Expr::Cmp { op, lhs, rhs } => {
            let (Some(a), Some(b)) = (eval_scalar(lhs, rel, row), eval_scalar(rhs, rel, row))
            else {
                return false;
            };
            op.eval(a.cmp_values(&b))
        }
        Expr::Prefix { scalar, prefix } => {
            let (Some(s), Some(p)) = (eval_scalar(scalar, rel, row), eval_scalar(prefix, rel, row))
            else {
                return false;
            };
            match (s.as_str(), p.as_str()) {
                (Some(s), Some(p)) => s.starts_with(p),
                _ => false,
            }
        }
        Expr::And(a, b) => eval_expr(a, rel, row) && eval_expr(b, rel, row),
        Expr::Or(a, b) => eval_expr(a, rel, row) || eval_expr(b, rel, row),
        Expr::Not(a) => !eval_expr(a, rel, row),
    }
}

/// Filters a relation in place.
pub fn filter_relation(rel: &mut Relation, expr: &Expr) {
    let schema = rel.clone();
    rel.rows.retain(|row| eval_expr(expr, &schema, row));
}

/// Extracts, from a filter, the tightest `lo ≤ var ≤ hi` bounds it
/// implies for `var` — used to turn filters into key-range scans.
/// Handles conjunctions; disjunctions/negations contribute nothing.
/// Returns `(lo, hi)` as optional inclusive bounds.
pub fn range_bounds_for(expr: &Expr, var: &str) -> (Option<Value>, Option<Value>) {
    let mut lo: Option<Value> = None;
    let mut hi: Option<Value> = None;
    collect_bounds(expr, var, &mut lo, &mut hi);
    (lo, hi)
}

fn collect_bounds(expr: &Expr, var: &str, lo: &mut Option<Value>, hi: &mut Option<Value>) {
    match expr {
        Expr::And(a, b) => {
            collect_bounds(a, var, lo, hi);
            collect_bounds(b, var, lo, hi);
        }
        Expr::Cmp { op, lhs: Scalar::Var(v), rhs: Scalar::Lit(lit) } if v.as_ref() == var => {
            apply_bound(*op, lit, lo, hi);
        }
        Expr::Cmp { op, lhs: Scalar::Lit(lit), rhs: Scalar::Var(v) } if v.as_ref() == var => {
            apply_bound(flip(*op), lit, lo, hi);
        }
        _ => {}
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

fn apply_bound(op: CmpOp, lit: &Value, lo: &mut Option<Value>, hi: &mut Option<Value>) {
    use std::cmp::Ordering::*;
    let tighten_lo = |lo: &mut Option<Value>| {
        if lo.as_ref().is_none_or(|c| lit.cmp_values(c) == Greater) {
            *lo = Some(lit.clone());
        }
    };
    let tighten_hi = |hi: &mut Option<Value>| {
        if hi.as_ref().is_none_or(|c| lit.cmp_values(c) == Less) {
            *hi = Some(lit.clone());
        }
    };
    match op {
        CmpOp::Eq => {
            tighten_lo(lo);
            tighten_hi(hi);
        }
        // Strict bounds stay conservative (inclusive key range, exact
        // filtering happens row-wise afterwards).
        CmpOp::Gt | CmpOp::Ge => tighten_lo(lo),
        CmpOp::Lt | CmpOp::Le => tighten_hi(hi),
        CmpOp::Ne => {}
    }
}

/// Extracts a `prefix(?var, 'p')` constraint on `var` from a filter
/// conjunct, if present.
pub fn prefix_for(expr: &Expr, var: &str) -> Option<String> {
    match expr {
        Expr::And(a, b) => prefix_for(a, var).or_else(|| prefix_for(b, var)),
        Expr::Prefix { scalar: Scalar::Var(v), prefix: Scalar::Lit(Value::Str(p)) }
            if v.as_ref() == var =>
        {
            Some(p.to_string())
        }
        _ => None,
    }
}

/// Extracts an `edist(?var, 'target') <= k`-style similarity constraint
/// on `var` from a filter conjunct, if present. `< k` normalizes to
/// `<= k-1`.
pub fn similarity_for(expr: &Expr, var: &str) -> Option<(String, usize)> {
    match expr {
        Expr::And(a, b) => similarity_for(a, var).or_else(|| similarity_for(b, var)),
        Expr::Cmp { op, lhs: Scalar::EDist(a, b), rhs: Scalar::Lit(Value::Int(k)) } => {
            let k = match op {
                CmpOp::Le => *k,
                CmpOp::Lt => *k - 1,
                _ => return None,
            };
            if k < 0 {
                return None;
            }
            match (a.as_ref(), b.as_ref()) {
                (Scalar::Var(v), Scalar::Lit(Value::Str(s)))
                | (Scalar::Lit(Value::Str(s)), Scalar::Var(v))
                    if v.as_ref() == var =>
                {
                    Some((s.to_string(), k as usize))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use unistore_vql::parse;

    fn rel() -> Relation {
        Relation {
            schema: vec![Arc::from("age"), Arc::from("name")],
            rows: vec![
                vec![Value::Int(30), Value::str("alice")],
                vec![Value::Int(45), Value::str("bob")],
            ],
        }
    }

    fn filter_of(src: &str) -> Expr {
        parse(src).unwrap().filters.remove(0)
    }

    #[test]
    fn cmp_filters_rows() {
        let mut r = rel();
        let e = filter_of("SELECT ?age WHERE {(?a,'age',?age) FILTER ?age < 40}");
        filter_relation(&mut r, &e);
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1], Value::str("alice"));
    }

    #[test]
    fn edist_evaluates() {
        let mut r = rel();
        let e = filter_of("SELECT ?name WHERE {(?a,'name',?name) FILTER edist(?name,'alicia')<=2}");
        filter_relation(&mut r, &e);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn unbound_var_is_false() {
        let mut r = rel();
        let e = filter_of("SELECT ?x WHERE {(?a,'x',?ghost) FILTER ?ghost = 1}");
        filter_relation(&mut r, &e);
        assert!(r.is_empty());
    }

    #[test]
    fn boolean_combinators() {
        let mut r = rel();
        let e = filter_of(
            "SELECT ?age WHERE {(?a,'age',?age)(?a,'name',?name)
             FILTER ?age >= 30 AND NOT ?name = 'bob'}",
        );
        filter_relation(&mut r, &e);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn range_bounds_extraction() {
        let e = filter_of("SELECT ?v WHERE {(?a,'y',?v) FILTER ?v >= 2000 AND ?v < 2010}");
        let (lo, hi) = range_bounds_for(&e, "v");
        assert_eq!(lo, Some(Value::Int(2000)));
        assert_eq!(hi, Some(Value::Int(2010))); // conservative inclusive
    }

    #[test]
    fn range_bounds_flipped_literal() {
        let e = filter_of("SELECT ?v WHERE {(?a,'y',?v) FILTER 2000 <= ?v}");
        let (lo, hi) = range_bounds_for(&e, "v");
        assert_eq!(lo, Some(Value::Int(2000)));
        assert_eq!(hi, None);
    }

    #[test]
    fn range_bounds_eq_pins_both() {
        let e = filter_of("SELECT ?v WHERE {(?a,'y',?v) FILTER ?v = 5}");
        let (lo, hi) = range_bounds_for(&e, "v");
        assert_eq!(lo, Some(Value::Int(5)));
        assert_eq!(hi, Some(Value::Int(5)));
    }

    #[test]
    fn disjunction_contributes_nothing() {
        let e = filter_of("SELECT ?v WHERE {(?a,'y',?v) FILTER ?v = 5 OR ?v = 9}");
        let (lo, hi) = range_bounds_for(&e, "v");
        assert_eq!((lo, hi), (None, None));
    }

    #[test]
    fn prefix_predicate_filters_and_extracts() {
        let mut r = rel();
        let e = filter_of("SELECT ?name WHERE {(?a,'name',?name) FILTER prefix(?name,'al')}");
        assert_eq!(prefix_for(&e, "name"), Some("al".to_string()));
        assert_eq!(prefix_for(&e, "other"), None);
        filter_relation(&mut r, &e);
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1], Value::str("alice"));
    }

    #[test]
    fn prefix_on_non_string_is_false() {
        let mut r = rel();
        let e = filter_of("SELECT ?age WHERE {(?a,'age',?age) FILTER prefix(?age,'3')}");
        filter_relation(&mut r, &e);
        assert!(r.is_empty(), "numbers have no prefixes");
    }

    #[test]
    fn similarity_extraction() {
        let e = filter_of("SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<3}");
        assert_eq!(similarity_for(&e, "s"), Some(("ICDE".to_string(), 2)));
        assert_eq!(similarity_for(&e, "other"), None);
        let e = filter_of("SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<=3}");
        assert_eq!(similarity_for(&e, "s"), Some(("ICDE".to_string(), 3)));
    }
}

//! The local reference engine.
//!
//! Evaluates VQL entirely in memory against a [`LocalTripleStore`].
//! Two uses: the *oracle* that distributed executions are checked
//! against in integration tests, and the single-peer fast path of the
//! public API.

use unistore_store::local::LocalTripleStore;
use unistore_store::mapping::MappingSet;
use unistore_util::FxHashSet;
use unistore_vql::{analyze, parse, AnalyzedQuery, VqlError};

use crate::logical::Logical;
use crate::mqp::{bind_triples, MqpNode};
use crate::relation::Relation;

/// A purely local VQL engine.
#[derive(Clone, Debug, Default)]
pub struct LocalEngine {
    store: LocalTripleStore,
    mappings: MappingSet,
}

impl LocalEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine over an existing store.
    pub fn with_store(store: LocalTripleStore) -> Self {
        let mappings = MappingSet::from_triples(store.all());
        LocalEngine { store, mappings }
    }

    /// Mutable store access; mappings are re-derived on the next query.
    pub fn store_mut(&mut self) -> &mut LocalTripleStore {
        &mut self.store
    }

    /// Read-only store access.
    pub fn store(&self) -> &LocalTripleStore {
        &self.store
    }

    /// Registers a schema mapping.
    pub fn add_mapping(&mut self, m: &unistore_store::Mapping) {
        self.store.insert(m.to_triple());
        self.mappings.add(m);
    }

    /// Parses, analyzes and executes a VQL query.
    pub fn query(&mut self, src: &str) -> Result<Relation, VqlError> {
        self.mappings = MappingSet::from_triples(self.store.all());
        let analyzed = analyze(parse(src)?)?;
        Ok(self.execute(&analyzed))
    }

    /// Executes an analyzed query.
    pub fn execute(&self, analyzed: &AnalyzedQuery) -> Relation {
        let logical = Logical::from_query(analyzed);
        let mut plan = MqpNode::from_logical(&logical);
        let all = self.store.all().to_vec();
        while let Some(pattern) = plan.first_scan().cloned() {
            let rel = bind_triples(&pattern, &all, &self.mappings);
            plan.resolve_first_scan(rel);
            plan.reduce();
        }
        plan.reduce();
        let mut out = plan.result().cloned().unwrap_or_else(|| Relation::empty(vec![]));
        dedup_rows(&mut out);
        out
    }
}

/// Result sets are bags, but duplicate rows arising purely from
/// replicated storage are unwanted; the engines dedup fully equal rows.
pub fn dedup_rows(rel: &mut Relation) {
    let mut seen: FxHashSet<Vec<u64>> = FxHashSet::default();
    let rows = std::mem::take(&mut rel.rows);
    rel.rows = rows
        .into_iter()
        .filter(|r| seen.insert(r.iter().map(crate::relation::value_hash).collect()))
        .collect();
}

#[cfg(test)]
mod tests {
    use super::*;
    use unistore_store::{Triple, Tuple, Value};

    /// The paper's Fig. 3 world, small: authors, publications,
    /// conferences.
    fn engine() -> LocalEngine {
        let mut e = LocalEngine::new();
        let tuples = vec![
            Tuple::new("p1")
                .with("name", Value::str("alice"))
                .with("age", Value::Int(28))
                .with("num_of_pubs", Value::Int(12))
                .with("has_published", Value::str("Similarity Search")),
            Tuple::new("p2")
                .with("name", Value::str("bob"))
                .with("age", Value::Int(45))
                .with("num_of_pubs", Value::Int(40))
                .with("has_published", Value::str("Progressive Joins")),
            Tuple::new("p3")
                .with("name", Value::str("carol"))
                .with("age", Value::Int(33))
                .with("num_of_pubs", Value::Int(5))
                .with("has_published", Value::str("Skyline Ops")),
            Tuple::new("pub1")
                .with("title", Value::str("Similarity Search"))
                .with("published_in", Value::str("ICDE 2006")),
            Tuple::new("pub2")
                .with("title", Value::str("Progressive Joins"))
                .with("published_in", Value::str("ICDE 2005")),
            Tuple::new("pub3")
                .with("title", Value::str("Skyline Ops"))
                .with("published_in", Value::str("VLDB 2005")),
            Tuple::new("c1")
                .with("confname", Value::str("ICDE 2006"))
                .with("series", Value::str("ICDE")),
            Tuple::new("c2")
                .with("confname", Value::str("ICDE 2005"))
                .with("series", Value::str("IDCE")), // typo on purpose
            Tuple::new("c3")
                .with("confname", Value::str("VLDB 2005"))
                .with("series", Value::str("VLDB")),
        ];
        for t in tuples {
            for triple in t.to_triples() {
                e.store_mut().insert(triple);
            }
        }
        e
    }

    #[test]
    fn single_pattern_query() {
        let mut e = engine();
        let r = e.query("SELECT ?n WHERE {(?a,'name',?n)}").unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn join_query() {
        let mut e = engine();
        let r = e
            .query(
                "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
                 (?p,'title',?t) (?p,'published_in',?conf)}",
            )
            .unwrap();
        assert_eq!(r.len(), 3);
        let alice = r.rows.iter().find(|row| row[0] == Value::str("alice")).expect("alice row");
        assert_eq!(alice[1], Value::str("ICDE 2006"));
    }

    #[test]
    fn filter_range() {
        let mut e = engine();
        let r = e
            .query("SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30 AND ?g < 40}")
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::str("carol"));
    }

    #[test]
    fn paper_flagship_query_semantics() {
        // Adapted to the small world: authors published in a series
        // within edit distance 2 of 'ICDE', skyline young+productive.
        let mut e = engine();
        let r = e
            .query(
                "SELECT ?name,?age,?cnt
                 WHERE {(?a,'name',?name) (?a,'age',?age)
                        (?a,'num_of_pubs',?cnt)
                        (?a,'has_published',?title) (?p,'title',?title)
                        (?p,'published_in',?conf) (?c,'confname',?conf)
                        (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3}
                 ORDER BY SKYLINE OF ?age MIN, ?cnt MAX",
            )
            .unwrap();
        // alice (28, 12) and bob (45, 40) both qualify (IDCE is within
        // distance 2); alice doesn't dominate bob (fewer pubs), bob
        // doesn't dominate alice (older). carol published at VLDB only.
        assert_eq!(r.len(), 2);
        let names: Vec<&Value> = r.rows.iter().map(|row| &row[0]).collect();
        assert!(names.contains(&&Value::str("alice")));
        assert!(names.contains(&&Value::str("bob")));
    }

    #[test]
    fn order_and_limit() {
        let mut e = engine();
        let r = e
            .query("SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g)} ORDER BY ?g DESC LIMIT 2")
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], Value::str("bob"));
        assert_eq!(r.rows[1][0], Value::str("carol"));
    }

    #[test]
    fn top_n() {
        let mut e = engine();
        let r =
            e.query("SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g)} ORDER BY ?g TOP 1").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::str("alice"));
    }

    #[test]
    fn schema_level_query() {
        // Query the *schema* of object p1 — attributes become data.
        let mut e = engine();
        let r = e.query("SELECT ?attr WHERE {('p1',?attr,?v)}").unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn mapping_expands_attributes() {
        let mut e = engine();
        e.store_mut().insert(Triple::new("x9", "dblp:fullname", Value::str("dave")));
        e.add_mapping(&unistore_store::Mapping::new("name", "dblp:fullname"));
        let r = e.query("SELECT ?n WHERE {(?a,'name',?n)}").unwrap();
        assert_eq!(r.len(), 4, "mapped attribute dblp:fullname must contribute");
    }

    #[test]
    fn metadata_is_queryable() {
        // Paper: "this additional metadata can be queried explicitly".
        let mut e = engine();
        e.add_mapping(&unistore_store::Mapping::new("name", "dblp:fullname"));
        let r = e.query("SELECT ?from,?to WHERE {(?from,'sys:maps_to',?to)}").unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][1], Value::str("dblp:fullname"));
    }

    #[test]
    fn empty_result_is_fine() {
        let mut e = engine();
        let r = e.query("SELECT ?n WHERE {(?a,'name','nobody') (?a,'name',?n)}").unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn cartesian_product_works() {
        let mut e = engine();
        let r = e.query("SELECT ?x,?y WHERE {(?a,'series',?x) (?b,'series',?y)}").unwrap();
        assert_eq!(r.len(), 9);
    }
}

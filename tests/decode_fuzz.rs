//! Decode-never-panics fuzzing over every protocol `Wire` type.
//!
//! Three adversities, one invariant: `Wire::decode` over bytes it did
//! not produce must return `Err`, never panic and never over-allocate —
//! a decoder panic is a remote crash trigger the moment frames arrive
//! from a real socket instead of the simulator.
//!
//! * **random bytes** — arbitrary buffers straight into `from_bytes`;
//! * **truncation** — every strict prefix of a valid encoding must be
//!   rejected (length prefixes cannot be silently satisfied early);
//! * **bit flips** — a valid encoding with one byte XORed anywhere must
//!   either be rejected or decode to a value that re-encodes cleanly.
//!
//! Whenever a mutated buffer *does* decode, the decoded value must
//! re-encode to `wire_size()` bytes that decode back to an identical
//! value: corrupt input may produce a different message, but never a
//! value the codec itself cannot handle.

use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

use unistore::{QueryMsg, UniMsg};
use unistore_chord::msg::ChordBatchOp;
use unistore_chord::ChordMsg;
use unistore_pgrid::PGridMsg;
use unistore_query::cost::StatsDelta;
use unistore_query::{Coverage, Mqp, MqpNode, Relation};
use unistore_simnet::NodeId;
use unistore_store::{Triple, Value};
use unistore_util::wire::{BatchOp, BatchVerb, OpBatch, Shared, Wire, WireError};
use unistore_util::{BloomFilter, ItemFilter};

/// Checks one buffer against the never-panic / re-encode invariant.
fn check_bytes<T: Wire + std::fmt::Debug>(data: &[u8]) {
    let buf = Bytes::copy_from_slice(data);
    if let Ok(v) = T::from_bytes(&buf) {
        let re = v.to_bytes();
        assert_eq!(re.len(), v.wire_size(), "wire_size disagrees with encode for {v:?}");
        let back = T::from_bytes(&re).expect("re-encoded bytes must decode");
        assert_eq!(format!("{back:?}"), format!("{v:?}"));
    }
}

/// Every strict prefix of a valid encoding must fail to decode: the
/// codec requires full consumption and length prefixes must not be
/// satisfiable early.
fn check_truncations<T: Wire + std::fmt::Debug>(seed: &T) {
    let full = seed.to_bytes();
    for cut in 0..full.len() {
        let b = Bytes::copy_from_slice(&full[..cut]);
        assert!(
            T::from_bytes(&b).is_err(),
            "prefix of {cut}/{} bytes decoded for {seed:?}",
            full.len()
        );
    }
}

/// XORs one byte of a valid encoding; decoding may succeed (the flip
/// landed in a value) but must never panic, and a success must
/// re-encode cleanly.
fn check_bitflip<T: Wire + std::fmt::Debug>(seed: &T, pos: usize, mask: u8) {
    let full = seed.to_bytes();
    if full.is_empty() {
        return;
    }
    let mut bytes = full.to_vec();
    let at = pos % bytes.len();
    bytes[at] ^= mask;
    check_bytes::<T>(&bytes);
}

/// Seed corpus per type: representative values covering every variant
/// and both empty and populated payloads.
trait FuzzSeeds: Wire + std::fmt::Debug + Sized {
    fn seeds() -> Vec<Self>;
}

fn sample_filter() -> Option<ItemFilter> {
    Some(ItemFilter { field: 2, bloom: BloomFilter::from_hashes([7u64, 8, 9], 0.01) })
}

fn sample_relation() -> Relation {
    Relation {
        schema: vec![Arc::from("n"), Arc::from("g")],
        rows: vec![
            vec![Value::str("alice"), Value::Int(30)],
            vec![Value::str("bob"), Value::Float(0.5)],
        ],
    }
}

fn sample_mqp() -> Mqp {
    let q = unistore_vql::parse("SELECT ?n WHERE {(?a,'name',?n)} LIMIT 2").expect("static query");
    Mqp::new(7, 3, MqpNode::Scan { pattern: q.patterns[0].clone() }, q.filters.clone(), Some(2))
}

fn sample_coverage() -> Coverage {
    let mut c = Coverage::full();
    c.record_scan(2, 3);
    c
}

fn sample_stats_delta() -> StatsDelta {
    let mut d = StatsDelta::new();
    d.record_insert(Triple::new("o9", "rating", Value::Int(5)));
    d.record_delete(Triple::new("o9", "rating", Value::Int(4)));
    d
}

fn sample_batch() -> OpBatch<Triple> {
    let mut b = OpBatch::new();
    let i = b.add_item(Triple::new("o1", "name", Value::str("alice")));
    b.push_insert(5, i, 0);
    b.push_insert(9, i, 0);
    b.push_delete(13, 0xFEED, 2);
    b
}

impl FuzzSeeds for PGridMsg<Triple> {
    fn seeds() -> Vec<Self> {
        let t = Triple::new("o1", "name", Value::str("alice"));
        let entries = vec![(42u64, 1u64, t.clone()), (43, 0, t.clone())];
        vec![
            PGridMsg::Lookup {
                qid: 9,
                key: 0xABCD,
                origin: NodeId(3),
                hops: 2,
                filter: sample_filter(),
            },
            PGridMsg::LookupReply { qid: 9, items: vec![t.clone()], hops: 3, ok: true },
            PGridMsg::Insert {
                qid: 1,
                key: 5,
                item: t.clone(),
                version: 2,
                origin: NodeId(0),
                hops: 0,
            },
            PGridMsg::InsertAck { qid: 1, hops: 4 },
            PGridMsg::Delete { qid: 4, key: 9, ident: 11, version: 2, origin: NodeId(1), hops: 3 },
            PGridMsg::OpBatch {
                qid: 12,
                attempt: 1,
                origin: NodeId(2),
                hops: 1,
                batch: sample_batch(),
            },
            PGridMsg::BatchAck { qid: 12, attempt: 1, ops: 3, hops: 4 },
            PGridMsg::Range {
                qid: 2,
                lo: 10,
                hi: 20,
                lmin: 1,
                origin: NodeId(4),
                hops: 1,
                filter: None,
            },
            PGridMsg::RangeSeq {
                qid: 3,
                lo: 10,
                hi: 20,
                origin: NodeId(4),
                hops: 1,
                filter: sample_filter(),
            },
            PGridMsg::RangeReply {
                qid: 2,
                cov_lo: 10,
                cov_hi: 15,
                items: vec![t.clone()],
                hops: 5,
                aborted: false,
            },
            PGridMsg::Replicate { entries: entries.clone() },
            PGridMsg::Digest { entries: vec![(1, 2, 3)] },
            PGridMsg::DigestReply { entries: vec![(42u64, 7u64, 1u64, Some(t)), (43, 8, 2, None)] },
            PGridMsg::Ping { nonce: 77 },
            PGridMsg::Pong { nonce: 77 },
            PGridMsg::TableRequest,
            PGridMsg::Exchange { path: unistore_util::BitPath::ROOT, store_len: 12 },
            PGridMsg::ExchangeData { entries },
            PGridMsg::ExchangeAdopt { bit: true },
        ]
    }
}

impl FuzzSeeds for ChordMsg<Triple> {
    fn seeds() -> Vec<Self> {
        let t = Triple::new("o2", "age", Value::Int(30));
        let entries = vec![(5u64, t.clone()), (6, t.clone())];
        vec![
            ChordMsg::Lookup {
                qid: 1,
                ring_key: 99,
                origin: NodeId(2),
                hops: 3,
                filter: sample_filter(),
            },
            ChordMsg::LookupReply { qid: 1, entries: entries.clone(), hops: 4, ok: true },
            ChordMsg::Insert {
                qid: 2,
                ring_key: 7,
                key: 700,
                item: t.clone(),
                version: 3,
                origin: NodeId(0),
                hops: 0,
            },
            ChordMsg::InsertAck { qid: 2, hops: 5 },
            ChordMsg::Delete {
                qid: 6,
                ring_key: 7,
                key: 70,
                ident: 700,
                version: 2,
                origin: NodeId(4),
                hops: 1,
            },
            ChordMsg::OpBatch {
                qid: 8,
                origin: NodeId(3),
                hops: 1,
                items: vec![t.clone()],
                ops: vec![ChordBatchOp {
                    bucket: false,
                    idx: 0,
                    op: BatchOp { key: 700, version: 0, verb: BatchVerb::Insert { item: 0 } },
                }],
            },
            ChordMsg::BatchAck { qid: 8, applied: vec![0, 1], hops: 3 },
            ChordMsg::BucketRange { qid: 3, lo: 10, hi: 90, origin: NodeId(1) },
            ChordMsg::BucketGet {
                qid: 3,
                ring_key: 55,
                lo: 10,
                hi: 90,
                origin: NodeId(1),
                hops: 2,
                filter: None,
            },
            ChordMsg::Bcast { qid: 4, lo: 0, hi: u64::MAX, limit: 12345, hops: 1, filter: None },
            ChordMsg::BcastReply { qid: 4, entries, nodes: 17, hops: 6 },
            ChordMsg::Replicate {
                entries: vec![((9, 90, 900), 1, Some(t.clone())), ((8, 80, 800), 2, None)],
            },
            ChordMsg::Digest { entries: vec![((9, 90, 900), 1)] },
            ChordMsg::DigestReply { entries: vec![((9, 90, 900), 3, None)] },
            ChordMsg::Ping,
            ChordMsg::Pong,
        ]
    }
}

/// Query-layer messages ride the envelope; these seeds cover every
/// `QueryMsg` variant plus an overlay frame for each backend.
impl FuzzSeeds for UniMsg<PGridMsg<Triple>> {
    fn seeds() -> Vec<Self> {
        let mut out: Vec<Self> = vec![
            UniMsg::Query(QueryMsg::Execute { mqp: sample_mqp() }),
            UniMsg::Query(QueryMsg::Route { key: 99, mqp: sample_mqp() }),
            UniMsg::Query(QueryMsg::Result {
                qid: 7,
                relation: sample_relation(),
                hops: 5,
                coverage: sample_coverage(),
            }),
            UniMsg::Query(QueryMsg::StatsDelta {
                epoch: 3,
                span: 6,
                delta: Shared::new(sample_stats_delta()),
            }),
            UniMsg::Query(QueryMsg::StatsProbe { qid: 11 }),
        ];
        out.extend(PGridMsg::seeds().into_iter().map(UniMsg::Overlay));
        out
    }
}

impl FuzzSeeds for UniMsg<ChordMsg<Triple>> {
    fn seeds() -> Vec<Self> {
        let mut out: Vec<Self> = vec![UniMsg::Query(QueryMsg::Result {
            qid: 7,
            relation: sample_relation(),
            hops: 5,
            coverage: sample_coverage(),
        })];
        out.extend(ChordMsg::seeds().into_iter().map(UniMsg::Overlay));
        out
    }
}

impl FuzzSeeds for OpBatch<Triple> {
    fn seeds() -> Vec<Self> {
        vec![OpBatch::new(), sample_batch()]
    }
}

impl FuzzSeeds for StatsDelta {
    fn seeds() -> Vec<Self> {
        vec![StatsDelta::new(), sample_stats_delta()]
    }
}

impl FuzzSeeds for BloomFilter {
    fn seeds() -> Vec<Self> {
        vec![BloomFilter::from_hashes([], 0.01), BloomFilter::from_hashes([7u64, 8, 9], 0.001)]
    }
}

impl FuzzSeeds for Coverage {
    fn seeds() -> Vec<Self> {
        vec![Coverage::full(), Coverage::failed(), sample_coverage()]
    }
}

impl FuzzSeeds for Relation {
    fn seeds() -> Vec<Self> {
        vec![Relation::empty(vec![Arc::from("x")]), sample_relation()]
    }
}

impl FuzzSeeds for Mqp {
    fn seeds() -> Vec<Self> {
        vec![sample_mqp()]
    }
}

/// Truncation must always be rejected — one deterministic sweep per
/// type over every seed and every cut point.
#[test]
fn truncated_encodings_rejected() {
    fn sweep<T: FuzzSeeds>() {
        for seed in T::seeds() {
            check_truncations(&seed);
        }
    }
    sweep::<UniMsg<PGridMsg<Triple>>>();
    sweep::<UniMsg<ChordMsg<Triple>>>();
    sweep::<PGridMsg<Triple>>();
    sweep::<ChordMsg<Triple>>();
    sweep::<OpBatch<Triple>>();
    sweep::<StatsDelta>();
    sweep::<BloomFilter>();
    sweep::<Coverage>();
    sweep::<Relation>();
    sweep::<Mqp>();
}

/// A zero-length buffer must decode to `UnexpectedEof`, not panic.
#[test]
fn empty_buffer_rejected() {
    let b = Bytes::new();
    assert!(matches!(UniMsg::<PGridMsg<Triple>>::from_bytes(&b), Err(WireError::UnexpectedEof)));
    assert!(matches!(ChordMsg::<Triple>::from_bytes(&b), Err(WireError::UnexpectedEof)));
}

macro_rules! fuzz_wire {
    ($($modname:ident => $ty:ty),* $(,)?) => {$(
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn random_bytes_never_panic(
                    data in proptest::collection::vec(any::<u8>(), 0..512)
                ) {
                    check_bytes::<$ty>(&data);
                }

                #[test]
                fn bitflips_never_panic(
                    seed_idx: u64,
                    pos: u64,
                    mask in 1u8..=255u8,
                ) {
                    let seeds = <$ty as FuzzSeeds>::seeds();
                    let seed = &seeds[(seed_idx as usize) % seeds.len()];
                    check_bitflip(seed, pos as usize, mask);
                }
            }
        }
    )*};
}

fuzz_wire! {
    uni_pgrid => UniMsg<PGridMsg<Triple>>,
    uni_chord => UniMsg<ChordMsg<Triple>>,
    pgrid_msg => PGridMsg<Triple>,
    chord_msg => ChordMsg<Triple>,
    op_batch => OpBatch<Triple>,
    stats_delta => StatsDelta,
    bloom_filter => BloomFilter,
    coverage => Coverage,
    relation => Relation,
    mqp => Mqp,
}

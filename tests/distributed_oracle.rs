//! Oracle tests: every distributed execution must produce exactly the
//! rows the local reference engine produces on the same data — over
//! *both* overlay backends. Each case runs the identical VQL text on a
//! P-Grid deployment and a Chord deployment of the same world and
//! asserts the three relations (P-Grid, Chord, oracle) are identical.

use unistore::backends::{chord_config, ChordUniCluster};
use unistore::{PlanMode, UniCluster, UniConfig};
use unistore_query::{JoinStrategy, Relation};
use unistore_store::Value;
use unistore_workload::{PubParams, PubWorld};

/// Canonical form: project columns in name order, sort rows.
fn normalize(rel: &Relation) -> Vec<Vec<String>> {
    let mut order: Vec<usize> = (0..rel.schema.len()).collect();
    order.sort_by_key(|&i| rel.schema[i].clone());
    let mut rows: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|r| {
            order
                .iter()
                .map(|&i| match &r[i] {
                    // Canonicalize numerics across Int/Float.
                    v @ (Value::Int(_) | Value::Float(_)) => {
                        format!("{}", v.as_f64().unwrap())
                    }
                    Value::Str(s) => format!("'{s}'"),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

/// One world, two deployments: the paper's native P-Grid substrate and
/// the Chord ring with its auxiliary bucket index.
struct BothBackends {
    pgrid: UniCluster,
    chord: ChordUniCluster,
}

fn check(both: &mut BothBackends, queries: &[&str]) {
    let oracle = both.pgrid.oracle();
    for (i, q) in queries.iter().enumerate() {
        let mut local = oracle.clone();
        let expected = normalize(&local.query(q).expect("oracle parses"));

        let origin = both.pgrid.random_node();
        let pg = both.pgrid.query(origin, q).expect("query parses");
        assert!(pg.ok, "query {i} timed out on P-Grid: {q}");
        // Nothing fails in these runs, so the completeness accounting
        // of the failure-masking layer must report full coverage.
        assert_eq!(pg.coverage.fraction(), 1.0, "query {i} partial on healthy P-Grid: {q}");
        let pg_rows = normalize(&pg.relation);
        assert_eq!(pg_rows, expected, "query {i} diverged from oracle on P-Grid: {q}");

        let origin = both.chord.random_node();
        let ch = both.chord.query(origin, q).expect("query parses");
        assert!(ch.ok, "query {i} timed out on Chord: {q}");
        assert_eq!(ch.coverage.fraction(), 1.0, "query {i} partial on healthy Chord: {q}");
        let ch_rows = normalize(&ch.relation);
        assert_eq!(ch_rows, expected, "query {i} diverged from oracle on Chord: {q}");

        // The acceptance bar for the pluggable overlay: identical
        // relations from both backends, not merely oracle-equal.
        assert_eq!(pg_rows, ch_rows, "query {i}: backends disagree: {q}");
    }
}

fn world_clusters(n_peers: usize, seed: u64) -> BothBackends {
    let world = PubWorld::generate(
        &PubParams { n_authors: 40, n_conferences: 10, ..Default::default() },
        seed,
    );
    let tuples = world.all_tuples();
    let mut pgrid = UniCluster::build(n_peers, UniConfig::default(), seed);
    pgrid.load(tuples.clone());
    let mut chord = ChordUniCluster::build_overlay(n_peers, chord_config(), seed);
    chord.load(tuples);
    BothBackends { pgrid, chord }
}

#[test]
fn point_and_range_queries_match_oracle() {
    let mut both = world_clusters(16, 42);
    check(
        &mut both,
        &[
            "SELECT ?n WHERE {(?a,'name',?n)}",
            "SELECT ?a WHERE {(?a,'age',30)}",
            "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30 AND ?g < 45}",
            "SELECT ?t WHERE {(?p,'title',?t) (?p,'year',?y) FILTER ?y >= 2003}",
            "SELECT ?c WHERE {(?x,'confname',?c)}",
        ],
    );
}

#[test]
fn join_queries_match_oracle() {
    let mut both = world_clusters(16, 43);
    check(
        &mut both,
        &[
            // Two-way join.
            "SELECT ?n,?t WHERE {(?a,'name',?n) (?a,'has_published',?t)}",
            // Three-way chain across entity types.
            "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)}",
            // Four-way with a filter on the far end.
            "SELECT ?n WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)
             (?c,'confname',?conf) (?c,'year',?y) FILTER ?y >= 2004}",
        ],
    );
}

#[test]
fn ranking_queries_match_oracle() {
    let mut both = world_clusters(16, 44);
    check(
        &mut both,
        &[
            "SELECT ?g,?n WHERE {(?a,'name',?n) (?a,'age',?g)} ORDER BY ?g, ?n",
            "SELECT ?n,?c WHERE {(?a,'name',?n) (?a,'num_of_pubs',?c)}
             ORDER BY SKYLINE OF ?c MAX",
            "SELECT ?g,?c WHERE {(?a,'age',?g) (?a,'num_of_pubs',?c)}
             ORDER BY SKYLINE OF ?g MIN, ?c MAX",
        ],
    );
}

#[test]
fn similarity_queries_match_oracle() {
    let mut both = world_clusters(16, 45);
    check(
        &mut both,
        &[
            "SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<3}",
            "SELECT ?cn WHERE {(?c,'series',?s) (?c,'confname',?cn)
             FILTER edist(?s,'VLDB')<=1}",
        ],
    );
}

#[test]
fn prefix_queries_match_oracle() {
    let mut both = world_clusters(16, 51);
    check(
        &mut both,
        &[
            // Native prefix search on the order-preserving index (served
            // by the bucket index on the Chord side).
            "SELECT ?cn WHERE {(?c,'confname',?cn) FILTER prefix(?cn,'ICDE')}",
            "SELECT ?n WHERE {(?a,'name',?n) FILTER prefix(?n,'alice')}",
            // Composed with a join.
            "SELECT ?n,?cn WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?cn) FILTER prefix(?cn,'VLDB')}",
        ],
    );
}

#[test]
fn paper_flagship_query_matches_oracle() {
    let mut both = world_clusters(24, 46);
    check(
        &mut both,
        &["SELECT ?name,?age,?cnt
           WHERE {(?a,'name',?name) (?a,'age',?age)
                  (?a,'num_of_pubs',?cnt)
                  (?a,'has_published',?title) (?p,'title',?title)
                  (?p,'published_in',?conf) (?c,'confname',?conf)
                  (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
           }
           ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"],
    );
}

#[test]
fn schema_and_value_queries_match_oracle() {
    let mut both = world_clusters(16, 47);
    check(
        &mut both,
        &[
            // Schema-level: which attributes does an object have?
            "SELECT ?attr WHERE {('auth0',?attr,?v)}",
            // Value index: which objects carry a given value anywhere?
            "SELECT ?a,?attr WHERE {(?a,?attr,2005)}",
        ],
    );
}

#[test]
fn projection_only_queries_match_oracle() {
    // No filter, no ranking: the plan is scan + project, exercised both
    // on a single pattern and on a join whose columns are then dropped.
    let mut both = world_clusters(16, 52);
    check(
        &mut both,
        &[
            // Project the subject variable, dropping the matched value.
            "SELECT ?a WHERE {(?a,'num_of_pubs',?c)}",
            // Join two patterns, keep one column of one side.
            "SELECT ?t WHERE {(?a,'has_published',?t) (?p,'title',?t)}",
            // Keep every head variable (identity projection).
            "SELECT ?a,?g WHERE {(?a,'age',?g)}",
        ],
    );
}

#[test]
fn string_filter_queries_match_oracle() {
    // FILTER over string-typed values: equality, ordering (the
    // order-preserving index must agree with real string comparison),
    // and inequality composed with a join.
    let mut both = world_clusters(16, 53);
    check(
        &mut both,
        &[
            "SELECT ?a WHERE {(?a,'name',?n) FILTER ?n = 'alice-0'}",
            "SELECT ?s WHERE {(?c,'series',?s) FILTER ?s >= 'P' AND ?s < 'W'}",
            "SELECT ?n,?s WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)
             (?c,'confname',?conf) (?c,'series',?s) FILTER ?s != 'ICDE'}",
        ],
    );
}

#[test]
fn multi_join_queries_match_oracle() {
    // Longer join chains than the basic join suite: five and six
    // patterns, joining through both subject and value positions.
    let mut both = world_clusters(16, 54);
    check(
        &mut both,
        &[
            // Five-way chain: author → publication → conference.
            "SELECT ?n,?cn,?y WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?cn)
             (?c,'confname',?cn) (?c,'year',?y)}",
            // Six-way: adds the author's age and a numeric filter at one
            // end plus a string filter at the other.
            "SELECT ?n,?g,?s WHERE {(?a,'name',?n) (?a,'age',?g)
             (?a,'has_published',?t) (?p,'title',?t)
             (?p,'published_in',?cn) (?c,'confname',?cn)
             (?c,'series',?s) FILTER ?g < 50 AND ?s >= 'E'}",
            // Star join: three attributes of the same subject.
            "SELECT ?n,?g,?c WHERE {(?a,'name',?n) (?a,'age',?g)
             (?a,'num_of_pubs',?c)}",
        ],
    );
}

#[test]
fn semi_join_forced_on_and_off_agree_with_oracle_on_both_backends() {
    // The semi-join acceptance bar: the Bloom filter may only remove
    // rows the hash join would discard, so forcing the pushdown on and
    // off must yield the *identical* relation — on both backends, and
    // equal to the oracle. Join shapes cover value- and
    // subject-position sharing and a range-shaped right side.
    let queries = [
        "SELECT ?n,?t WHERE {(?a,'name',?n) (?a,'has_published',?t)}",
        "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
         (?p,'title',?t) (?p,'published_in',?conf)}",
        "SELECT ?n,?cn,?y WHERE {(?a,'name',?n) (?a,'has_published',?t)
         (?p,'title',?t) (?p,'published_in',?cn)
         (?c,'confname',?cn) (?c,'year',?y)}",
        "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30 AND ?g < 45}",
    ];
    let world = PubWorld::generate(
        &PubParams { n_authors: 40, n_conferences: 10, ..Default::default() },
        55,
    );
    let tuples = world.all_tuples();
    let modes = [
        PlanMode { join_pref: Some(JoinStrategy::SemiJoin), ..Default::default() },
        PlanMode { no_semi_join: true, ..Default::default() },
    ];
    for q in queries {
        let mut relations: Vec<Vec<Vec<String>>> = Vec::new();
        for mode in modes {
            let mut pgrid = UniCluster::build(16, UniConfig::default(), 55);
            pgrid.load(tuples.clone());
            pgrid.set_plan_mode(mode);
            let expected = normalize(&pgrid.oracle().query(q).expect("oracle parses"));
            let origin = pgrid.random_node();
            let out = pgrid.query(origin, q).expect("query parses");
            assert!(out.ok, "P-Grid timed out ({mode:?}): {q}");
            assert_eq!(normalize(&out.relation), expected, "P-Grid vs oracle ({mode:?}): {q}");
            relations.push(normalize(&out.relation));

            let mut chord = ChordUniCluster::build_overlay(16, chord_config(), 55);
            chord.load(tuples.clone());
            chord.set_plan_mode(mode);
            let origin = chord.random_node();
            let out = chord.query(origin, q).expect("query parses");
            assert!(out.ok, "Chord timed out ({mode:?}): {q}");
            assert_eq!(normalize(&out.relation), expected, "Chord vs oracle ({mode:?}): {q}");
            relations.push(normalize(&out.relation));
        }
        assert!(
            relations.windows(2).all(|w| w[0] == w[1]),
            "semi-join on/off × backends disagree: {q}"
        );
    }
}

#[test]
fn batched_and_per_op_loads_yield_identical_relations_on_both_backends() {
    // The batch-pipeline acceptance bar: routing a whole world through
    // `insert_batch` (per-hop OpBatch coalescing, shared payloads,
    // aggregated acks) must leave the indexes in exactly the state the
    // per-op write fan-out produces — asserted through the full query
    // stack against the oracle, on BOTH backends.
    let world =
        PubWorld::generate(&PubParams { n_authors: 8, n_conferences: 3, ..Default::default() }, 56);
    let tuples = world.all_tuples();
    let queries = [
        "SELECT ?n WHERE {(?a,'name',?n)}",
        "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30 AND ?g < 45}",
        "SELECT ?n,?t WHERE {(?a,'name',?n) (?a,'has_published',?t)}",
        "SELECT ?attr WHERE {('auth0',?attr,?v)}",
    ];
    for q in queries {
        let mut relations: Vec<Vec<Vec<String>>> = Vec::new();
        for batched in [true, false] {
            let mut pgrid =
                UniCluster::build(16, UniConfig::default().with_batch_writes(batched), 56);
            let origin = pgrid.random_node();
            let (ok, _) = pgrid.insert_batch(origin, &tuples);
            assert!(ok, "P-Grid routed load must be acked (batched={batched})");
            let expected = normalize(&pgrid.oracle().query(q).expect("oracle parses"));
            let origin = pgrid.random_node();
            let out = pgrid.query(origin, q).expect("query parses");
            assert!(out.ok, "P-Grid timed out (batched={batched}): {q}");
            assert_eq!(normalize(&out.relation), expected, "P-Grid vs oracle: {q}");
            relations.push(normalize(&out.relation));

            let mut chord =
                ChordUniCluster::build_overlay(16, chord_config().with_batch_writes(batched), 56);
            let origin = chord.random_node();
            let (ok, _) = chord.insert_batch(origin, &tuples);
            assert!(ok, "Chord routed load must be acked (batched={batched})");
            let origin = chord.random_node();
            let out = chord.query(origin, q).expect("query parses");
            assert!(out.ok, "Chord timed out (batched={batched}): {q}");
            assert_eq!(normalize(&out.relation), expected, "Chord vs oracle: {q}");
            relations.push(normalize(&out.relation));
        }
        assert!(
            relations.windows(2).all(|w| w[0] == w[1]),
            "batched vs per-op loads diverged across backends: {q}"
        );
    }
}

#[test]
fn oracle_agreement_across_network_sizes() {
    for n in [4usize, 8, 32, 64] {
        let mut both = world_clusters(n, 48);
        check(&mut both, &["SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g < 40}"]);
    }
}

#[test]
fn replication_does_not_duplicate_results() {
    // P-Grid-specific: replica groups answer the same scan; the result
    // must still be a set. (Chord keeps one copy per index instead and
    // is covered by the dual-index dedup in every other test.)
    let world = PubWorld::generate(&PubParams { n_authors: 30, ..Default::default() }, 49);
    let mut cluster = UniCluster::build(24, UniConfig::default().with_replication(3), 49);
    cluster.load(world.all_tuples());
    let oracle = cluster.oracle();
    for q in [
        "SELECT ?n WHERE {(?a,'name',?n)}",
        "SELECT ?n,?t WHERE {(?a,'name',?n) (?a,'has_published',?t)}",
    ] {
        let origin = cluster.random_node();
        let dist = cluster.query(origin, q).expect("query parses");
        assert!(dist.ok, "query timed out: {q}");
        let mut local = oracle.clone();
        let expected = local.query(q).expect("oracle parses");
        assert_eq!(normalize(&dist.relation), normalize(&expected), "diverged: {q}");
    }
}

#[test]
fn heterogeneous_world_with_mappings_matches_oracle() {
    let world = PubWorld::generate(
        &PubParams { n_authors: 30, n_conferences: 8, ..Default::default() },
        50,
    );
    let hetero = unistore_workload::hetero::heterogenize(&world, 2);
    let mut pgrid = UniCluster::build(16, UniConfig::default(), 50);
    pgrid.load(hetero.tuples.clone());
    let mut chord = ChordUniCluster::build_overlay(16, chord_config(), 50);
    chord.load(hetero.tuples.clone());
    for m in &hetero.mappings {
        pgrid.add_mapping(m);
        chord.add_mapping(m);
    }
    let mut both = BothBackends { pgrid, chord };
    // Query under the *original* schema; mapped tuples must surface on
    // both backends.
    check(&mut both, &["SELECT ?n WHERE {(?a,'name',?n)}"]);
    let origin = both.pgrid.random_node();
    let dist = both.pgrid.query(origin, "SELECT ?n WHERE {(?a,'name',?n)}").unwrap();
    assert_eq!(dist.relation.len(), 30, "all 30 authors despite split schemas");
}

/// The wire-buffer pool is a pure optimization: with pooling forced
/// off, every message re-sizes through a fresh scratch buffer, and the
/// distributed answers must not move on either backend. Pool state is
/// thread-local, so forcing it here cannot leak into other tests.
#[test]
fn oracle_holds_with_pooling_disabled() {
    unistore_util::wire::pool::set_enabled(false);
    let mut both = world_clusters(16, 47);
    check(
        &mut both,
        &[
            "SELECT ?n WHERE {(?a,'name',?n)}",
            "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30 AND ?g < 45}",
            "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)}",
        ],
    );
    assert_eq!(unistore_util::wire::pool::pooled_count(), 0, "disabled pool must stay empty");
    unistore_util::wire::pool::set_enabled(true);
}

/// The failure-masking layer at its strictest settings — a fail-fast
/// coverage floor, hedged retries, replication and (on Chord) liveness
/// probing — must be invisible on a healthy network: full coverage and
/// the exact oracle relations on both backends.
#[test]
fn failure_masking_is_invisible_on_the_healthy_path() {
    let world = PubWorld::generate(
        &PubParams { n_authors: 40, n_conferences: 10, ..Default::default() },
        57,
    );
    let tuples = world.all_tuples();
    let pg_cfg = UniConfig::default().with_replication(3).with_min_coverage(1.0).with_hedging(true);
    let mut pgrid = UniCluster::build(16, pg_cfg, 57);
    pgrid.load(tuples.clone());
    let mut ch_cfg = chord_config().with_min_coverage(1.0).with_hedging(true);
    ch_cfg.overlay.replicate = true;
    ch_cfg.overlay.ping_interval = unistore_simnet::SimTime::from_secs(10);
    let mut chord = ChordUniCluster::build_overlay(16, ch_cfg, 57);
    chord.load(tuples);
    let mut both = BothBackends { pgrid, chord };
    check(
        &mut both,
        &[
            "SELECT ?n WHERE {(?a,'name',?n)}",
            "SELECT ?a WHERE {(?a,'age',30)}",
            "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30 AND ?g < 45}",
            "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)}",
            "SELECT ?cn WHERE {(?c,'confname',?cn) FILTER prefix(?cn,'ICDE')}",
        ],
    );
}

/// The same queries with pooling explicitly on (the default): the
/// pooled scratch path and the disabled path must agree bit-for-bit at
/// the relation level across both backends.
#[test]
fn oracle_holds_with_pooling_enabled() {
    unistore_util::wire::pool::set_enabled(true);
    let mut both = world_clusters(16, 47);
    check(
        &mut both,
        &[
            "SELECT ?n WHERE {(?a,'name',?n)}",
            "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30 AND ?g < 45}",
            "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)}",
        ],
    );
}

//! Failure injection: message loss, crashes, churn — the paper's
//! "unreliable and highly dynamic environments" (§3).

use unistore::{UniCluster, UniConfig};
use unistore_simnet::churn::{install_churn, ChurnConfig};
use unistore_simnet::{NodeId, SimTime};
use unistore_workload::{PubParams, PubWorld};

/// Canonical relation form (column order by name, sorted rows,
/// numerics unified) so distributed results compare against the
/// oracle irrespective of column or row order.
fn canon(rel: &unistore_query::Relation) -> Vec<Vec<String>> {
    use unistore_store::Value;
    let mut order: Vec<usize> = (0..rel.schema.len()).collect();
    order.sort_by_key(|&i| rel.schema[i].clone());
    let mut rows: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|r| {
            order
                .iter()
                .map(|&i| match &r[i] {
                    v @ (Value::Int(_) | Value::Float(_)) => format!("{}", v.as_f64().unwrap()),
                    Value::Str(s) => format!("'{s}'"),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn cluster_with_world(n: usize, cfg: UniConfig, seed: u64) -> UniCluster {
    let world = PubWorld::generate(
        &PubParams { n_authors: 30, n_conferences: 8, ..Default::default() },
        seed,
    );
    let mut cluster = UniCluster::build(n, cfg, seed);
    cluster.load(world.all_tuples());
    cluster
}

/// Replicated + redundant-ref config with short timeouts so failure
/// tests finish quickly.
fn robust_cfg() -> UniConfig {
    let mut cfg = UniConfig::default().with_replication(3);
    cfg.overlay.refs_per_level = 4;
    cfg.query_timeout = SimTime::from_secs(30);
    cfg.overlay.query_timeout = SimTime::from_secs(8);
    cfg
}

#[test]
fn moderate_loss_queries_still_answer() {
    let mut cluster = cluster_with_world(32, robust_cfg(), 11);
    cluster.net.set_loss_rate(0.02);
    let mut succeeded = 0;
    for i in 0..10 {
        let origin = NodeId(i % 32);
        let out = cluster
            .query(origin, "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g < 40}")
            .unwrap();
        succeeded += out.ok as u32;
    }
    assert!(succeeded >= 8, "2% loss should rarely kill a query ({succeeded}/10)");
}

#[test]
fn crashed_minority_does_not_stop_point_queries() {
    let mut cluster = cluster_with_world(32, robust_cfg(), 12);
    // Crash 5 of 32 peers.
    for i in [3u32, 9, 14, 21, 28] {
        cluster.net.schedule_down(NodeId(i), cluster.net.now());
    }
    cluster.settle(SimTime::from_millis(10));
    let mut succeeded = 0;
    let mut attempts = 0;
    for i in 0..32u32 {
        if !cluster.net.is_up(NodeId(i)) {
            continue;
        }
        attempts += 1;
        let out = cluster.query(NodeId(i), "SELECT ?g WHERE {('auth1','age',?g)}").unwrap();
        // With replication 3, some replica of auth1's leaf survives;
        // individual routes may still dead-end on a crashed ref.
        succeeded += (out.ok && !out.relation.is_empty()) as u32;
        if attempts == 8 {
            break;
        }
    }
    assert!(succeeded >= 5, "replication should mask a crashed minority ({succeeded}/8)");
}

#[test]
fn churn_with_maintenance_keeps_success_rate_up() {
    let mut cfg = robust_cfg().with_maintenance(SimTime::from_secs(5), SimTime::from_secs(10));
    cfg.overlay.ping_timeout = SimTime::from_secs(1);
    let mut cluster = cluster_with_world(32, cfg, 13);
    let mut rng = unistore_util::rng::derive_rng(13, unistore_util::rng::stream::CHURN);
    let churn = ChurnConfig {
        mean_session: SimTime::from_secs(120),
        mean_downtime: SimTime::from_secs(30),
        churn_fraction: 0.4,
    };
    install_churn(&mut cluster.net, &mut rng, &churn, SimTime::from_secs(600));

    let mut succeeded = 0;
    let mut total = 0;
    for round in 0..12 {
        cluster.settle(SimTime::from_secs(45));
        let origin = NodeId((round * 5) % 32);
        if !cluster.net.is_up(origin) {
            continue;
        }
        total += 1;
        let out = cluster.query(origin, "SELECT ?n WHERE {(?a,'name',?n)}").unwrap();
        succeeded += out.ok as u32;
    }
    assert!(total >= 6, "driver should find live origins");
    assert!(
        succeeded * 10 >= total * 6,
        "under churn with maintenance, ≥60% of queries should complete ({succeeded}/{total})"
    );
}

#[test]
fn range_coverage_flags_incompleteness_under_partition() {
    // Crash ALL replicas of some leaf; a full-attribute range query must
    // not silently return a partial answer as complete.
    let mut cfg = UniConfig { query_timeout: SimTime::from_secs(10), ..UniConfig::default() };
    cfg.overlay.query_timeout = SimTime::from_secs(5);
    let mut cluster = cluster_with_world(16, cfg, 14);
    // Take down half the network — some leaf certainly dies entirely.
    for i in 0..8u32 {
        cluster.net.schedule_down(NodeId(i * 2), cluster.net.now());
    }
    cluster.settle(SimTime::from_millis(10));
    let origin = (0..16u32).map(NodeId).find(|&n| cluster.net.is_up(n)).unwrap();
    let oracle_count = {
        let mut o = cluster.oracle();
        o.query("SELECT ?n WHERE {(?a,'name',?n)}").unwrap().len()
    };
    let out = cluster.query(origin, "SELECT ?n WHERE {(?a,'name',?n)}").unwrap();
    // Either the query honestly failed, or it returned fewer rows —
    // never a fabricated complete answer.
    assert!(!out.ok || out.relation.len() <= oracle_count, "no fabricated rows under partition");
    if out.ok {
        assert!(
            out.relation.len() < oracle_count,
            "with half the peers gone some names must be missing"
        );
    }
}

mod dup_reorder_fuzz {
    use proptest::prelude::*;
    use unistore::backends::{chord_config, ChordUniCluster};
    use unistore_overlay::Overlay;
    use unistore_simnet::fault::{FaultPlan, Window};
    use unistore_store::{Triple, Value};

    use super::*;

    /// Duplication + reordering, no loss: every query must complete with
    /// full coverage and oracle-exact rows (pending tables drop replayed
    /// completions instead of double-counting them), and a write must
    /// land exactly once (version rules drop replayed deliveries).
    fn run_case<O: Overlay<Item = Triple>>(mut cluster: UniCluster<O>, dup: f64, reorder: f64) {
        let world = PubWorld::generate(
            &PubParams { n_authors: 12, n_conferences: 4, ..Default::default() },
            21,
        );
        cluster.load(world.all_tuples());
        cluster.net.set_fault_plan(FaultPlan::new().duplicate(dup, Window::always()).reorder(
            reorder,
            SimTime::from_millis(200),
            Window::always(),
        ));
        let queries = [
            "SELECT ?g WHERE {('auth1','age',?g)}",
            "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g < 40}",
        ];
        let (expected, old_val) = {
            let mut o = cluster.oracle();
            let expected: Vec<Vec<Vec<String>>> =
                queries.iter().map(|q| canon(&o.query(q).unwrap())).collect();
            let old_val = o.query(queries[0]).unwrap().rows[0][0].clone();
            (expected, old_val)
        };
        for (i, q) in queries.iter().enumerate() {
            let out = cluster.query(NodeId(i as u32), q).unwrap();
            assert!(out.ok, "dup/reorder alone must not fail a query: {q}");
            assert!(out.coverage.fraction() >= 1.0, "no loss means full coverage: {q}");
            assert_eq!(canon(&out.relation), expected[i], "exact rows under dup/reorder: {q}");
        }
        let old = Triple::new("auth1", "age", old_val);
        assert!(cluster.update(NodeId(0), &old, Value::Int(99), 1), "update must be acked");
        cluster.settle(SimTime::from_secs(2));
        let out = cluster.query(NodeId(1), queries[0]).unwrap();
        assert!(out.ok, "post-update read must answer");
        assert_eq!(
            canon(&out.relation),
            vec![vec!["99".to_string()]],
            "the update lands exactly once — no duplicate or resurrected rows"
        );
        assert_eq!(cluster.in_flight_len(), 0, "driver tables drain");
    }

    proptest! {
        #[test]
        fn duplicated_reordered_delivery_is_idempotent(
            seed in 0u64..1_000_000,
            dup in 0.0f64..0.4,
            reorder in 0.0f64..0.4,
            pgrid in proptest::any::<bool>(),
        ) {
            if pgrid {
                run_case(UniCluster::build(10, UniConfig::default(), seed), dup, reorder);
            } else {
                run_case(ChordUniCluster::build_overlay(10, chord_config(), seed), dup, reorder);
            }
        }
    }
}

mod composed_faults {
    use unistore::backends::{chord_config, ChordUniCluster};
    use unistore_overlay::Overlay;
    use unistore_simnet::fault::{FaultPlan, Window};
    use unistore_store::Triple;

    use super::*;

    /// Partition + delay-spike windows composed with live churn while a
    /// 32-deep pipelined query window drains. Every outcome is held to
    /// the oracle: a full-coverage completion must match it exactly,
    /// and a partial or failed one may only miss rows, never invent
    /// them.
    fn run_composed<O: Overlay<Item = Triple>>(mut cluster: UniCluster<O>, seed: u64) {
        let world = PubWorld::generate(
            &PubParams { n_authors: 30, n_conferences: 8, ..Default::default() },
            seed,
        );
        cluster.load(world.all_tuples());
        let queries = [
            "SELECT ?g WHERE {('auth1','age',?g)}",
            "SELECT ?n WHERE {(?a,'name',?n)}",
            "SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g < 40}",
        ];
        let expected: Vec<Vec<Vec<String>>> = {
            let mut o = cluster.oracle();
            queries.iter().map(|q| canon(&o.query(q).unwrap())).collect()
        };

        // Live churn over the whole run, a partition that opens while
        // the pipelined window drains, and a delay spike overlapping the
        // partition's tail — the three fault modes composed.
        let n = cluster.net.len() as u32;
        let mut rng = unistore_util::rng::derive_rng(seed, unistore_util::rng::stream::CHURN);
        let churn = ChurnConfig {
            mean_session: SimTime::from_secs(120),
            mean_downtime: SimTime::from_secs(30),
            churn_fraction: 0.25,
        };
        let churned = install_churn(&mut cluster.net, &mut rng, &churn, SimTime::from_secs(600));
        let origins: Vec<NodeId> =
            (0..n).map(NodeId).filter(|id| !churned.contains(id)).take(8).collect();
        let island: Vec<NodeId> =
            (0..n).rev().map(NodeId).filter(|id| !origins.contains(id)).take(5).collect();
        let now = cluster.net.now();
        let part = Window::new(now + SimTime::from_secs(2), now + SimTime::from_secs(60));
        let spike = Window::new(now + SimTime::from_secs(20), now + SimTime::from_secs(90));
        cluster.net.set_fault_plan(
            FaultPlan::new().partition("minority", island, part).delay_spike(
                None,
                None,
                SimTime::from_millis(50),
                spike,
            ),
        );

        for i in 0..32 {
            cluster
                .query_submit(origins[i % origins.len()], queries[i % queries.len()])
                .expect("query parses");
        }
        let outcomes = cluster.query_wait_all();
        assert_eq!(outcomes.len(), 32, "every submission yields an outcome");
        assert_eq!(cluster.in_flight_len(), 0, "driver tables drain");

        let mut completed = 0;
        for (i, (_, out)) in outcomes.iter().enumerate() {
            let q = queries[i % queries.len()];
            let want = &expected[i % queries.len()];
            let got = canon(&out.relation);
            if out.ok && out.coverage.fraction() >= 1.0 {
                assert_eq!(&got, want, "full coverage must be oracle-exact: {q}");
            } else {
                // Rows may be missing, never invented: multiset
                // containment in the oracle's rows.
                let mut pool = want.clone();
                for row in &got {
                    let at = pool
                        .iter()
                        .position(|w| w == row)
                        .unwrap_or_else(|| panic!("fabricated row {row:?} for {q}"));
                    pool.swap_remove(at);
                }
            }
            completed += out.ok as u32;
        }
        assert!(
            completed >= 16,
            "most of the window should complete under composed faults ({completed}/32)"
        );
    }

    #[test]
    fn pipelined_window_survives_partition_spike_and_churn_pgrid() {
        let mut cfg = robust_cfg().with_maintenance(SimTime::from_secs(10), SimTime::from_secs(20));
        cfg.overlay.ping_timeout = SimTime::from_secs(1);
        run_composed(UniCluster::build(32, cfg, 22), 22);
    }

    #[test]
    fn pipelined_window_survives_partition_spike_and_churn_chord() {
        let mut cfg = chord_config();
        cfg.overlay.replicate = true;
        cfg.overlay.anti_entropy_interval = SimTime::from_secs(20);
        cfg.overlay.ping_interval = SimTime::from_secs(5);
        cfg.query_timeout = SimTime::from_secs(30);
        cfg.overlay.query_timeout = SimTime::from_secs(8);
        run_composed(ChordUniCluster::build_overlay(32, cfg, 22), 22);
    }
}

#[test]
fn correlated_failure_does_not_cause_retry_storm() {
    // A blackout strands a full 32-deep admission window at one instant.
    // Jittered initial deadlines, the decorrelated retry sampler, and
    // jittered hedge arming must spread the re-dispatch waves: no single
    // simulated instant may see a burst anywhere near "every stranded
    // query retries in lockstep" (32+ sends at one time).
    let mut cfg = robust_cfg().with_stats_refresh(SimTime::from_secs(100_000));
    cfg.query_timeout = SimTime::from_secs(20);
    let mut cluster = cluster_with_world(16, cfg, 16);
    let origin = NodeId(0);

    // Warm the origin's RTT window so the adaptive attempt timeout (and
    // with it the retry chain) is active rather than one cold attempt
    // that only expires at the deadline.
    for _ in 0..12 {
        let out = cluster.query(origin, "SELECT ?n WHERE {(?a,'name',?n)}").unwrap();
        assert!(out.ok);
    }

    // Total blackout, then strand a whole window submitted at one time.
    cluster.net.set_loss_rate(1.0);
    for _ in 0..32 {
        cluster.query_submit(origin, "SELECT ?n WHERE {(?a,'name',?n)}").unwrap();
    }
    // Step through the synchronized admission burst itself: the 32
    // first dispatches share the submission instant by construction and
    // are not what the jitter is for.
    cluster.settle(SimTime::from_micros(1));

    // From here on every send is a re-dispatch (retry or hedge). Group
    // sends by simulated instant and track the worst burst.
    let mut last_sent = cluster.net.metrics().sent;
    let mut cur_at = cluster.net.now();
    let (mut cur_burst, mut max_burst, mut total) = (0u64, 0u64, 0u64);
    let horizon = cluster.net.now() + SimTime::from_secs(20);
    while cluster.net.now() < horizon && cluster.net.step() {
        let sent = cluster.net.metrics().sent;
        let delta = sent - last_sent;
        last_sent = sent;
        if cluster.net.now() != cur_at {
            max_burst = max_burst.max(cur_burst);
            cur_at = cluster.net.now();
            cur_burst = 0;
        }
        cur_burst += delta;
        total += delta;
    }
    max_burst = max_burst.max(cur_burst);
    assert!(total >= 64, "stranded queries must keep retrying ({total} sends)");
    assert!(
        max_burst <= 8,
        "retry waves must stay decorrelated: worst per-instant burst \
         {max_burst} of {total} total sends"
    );
}

#[test]
fn anti_entropy_propagates_updates_to_lagging_replicas() {
    // One replica misses the write; pull anti-entropy must converge it
    // (paper ref [4] push/pull updates).
    let mut cfg = UniConfig::default()
        .with_replication(3)
        .with_maintenance(SimTime::from_secs(1_000_000_000), SimTime::from_secs(10));
    cfg.overlay.query_timeout = SimTime::from_secs(5);
    let mut cluster = cluster_with_world(12, cfg, 15);

    // Crash one replica of auth0's OID leaf, then update auth0's age.
    let key = unistore_store::index::oid_key(&unistore_store::Oid::new("auth0"));
    let leaf = cluster.leaves().iter().position(|p| p.is_prefix_of_key(key)).unwrap();
    let _ = leaf;
    let old_age = {
        let mut o = cluster.oracle();
        o.query("SELECT ?g WHERE {('auth0','age',?g)}").unwrap().rows[0][0].clone()
    };
    // Find the replica group by asking each node whether it stores the key.
    let holders: Vec<NodeId> = (0..12u32)
        .map(NodeId)
        .filter(|&n| !cluster.net.node(n).overlay.store().get(key).is_empty())
        .collect();
    assert!(holders.len() >= 3, "replication 3 expected, got {holders:?}");
    let lagging = holders[0];
    cluster.net.schedule_down(lagging, cluster.net.now());
    cluster.settle(SimTime::from_millis(1));

    let old = unistore_store::Triple::new("auth0", "age", old_age);
    assert!(cluster.update(NodeId(holders[1].0), &old, unistore_store::Value::Int(77), 1));

    // Revive immediately — NO draining of the update's in-flight
    // replica traffic first. The tail of the replica cascade (the
    // second-hop delete of the superseded entry) may land on the
    // revived node in any order relative to its own catch-up; the
    // per-identity version rules alone must make every interleaving
    // converge to the updated value.
    cluster.net.schedule_up(lagging, cluster.net.now());
    cluster.settle(SimTime::from_millis(1));

    // Let anti-entropy run (10 s interval): pulls the new version.
    cluster.settle(SimTime::from_secs(120));
    let after = cluster.net.node(lagging).overlay.store().get(key);
    assert!(
        after.iter().any(|t| t.attr.as_ref() == "age" && t.value.as_f64() == Some(77.0)),
        "anti-entropy must deliver the updated value, got {after:?}"
    );

    // Adversarial stale delivery: a late `Replicate` still carrying the
    // superseded entry arrives after convergence (a delayed duplicate
    // from before the crash). The tombstone's newer version must reject
    // it — revival safety comes from version rules, not from quiescence.
    cluster.net.inject(
        lagging,
        unistore::UniMsg::Overlay(unistore_pgrid::PGridMsg::Replicate {
            entries: vec![(key, 0, old.clone())],
        }),
    );
    cluster.settle(SimTime::from_millis(1));
    let after = cluster.net.node(lagging).overlay.store().get(key);
    assert!(
        !after.iter().any(|t| t.attr.as_ref() == "age" && t.value.as_f64() != Some(77.0)),
        "a stale Replicate must not resurrect the superseded age, got {after:?}"
    );
}

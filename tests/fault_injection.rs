//! Failure injection: message loss, crashes, churn — the paper's
//! "unreliable and highly dynamic environments" (§3).

use unistore::{UniCluster, UniConfig};
use unistore_simnet::churn::{install_churn, ChurnConfig};
use unistore_simnet::{NodeId, SimTime};
use unistore_workload::{PubParams, PubWorld};

fn cluster_with_world(n: usize, cfg: UniConfig, seed: u64) -> UniCluster {
    let world = PubWorld::generate(
        &PubParams { n_authors: 30, n_conferences: 8, ..Default::default() },
        seed,
    );
    let mut cluster = UniCluster::build(n, cfg, seed);
    cluster.load(world.all_tuples());
    cluster
}

/// Replicated + redundant-ref config with short timeouts so failure
/// tests finish quickly.
fn robust_cfg() -> UniConfig {
    let mut cfg = UniConfig::default().with_replication(3);
    cfg.overlay.refs_per_level = 4;
    cfg.query_timeout = SimTime::from_secs(30);
    cfg.overlay.query_timeout = SimTime::from_secs(8);
    cfg
}

#[test]
fn moderate_loss_queries_still_answer() {
    let mut cluster = cluster_with_world(32, robust_cfg(), 11);
    cluster.net.set_loss_rate(0.02);
    let mut succeeded = 0;
    for i in 0..10 {
        let origin = NodeId(i % 32);
        let out = cluster
            .query(origin, "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g < 40}")
            .unwrap();
        succeeded += out.ok as u32;
    }
    assert!(succeeded >= 8, "2% loss should rarely kill a query ({succeeded}/10)");
}

#[test]
fn crashed_minority_does_not_stop_point_queries() {
    let mut cluster = cluster_with_world(32, robust_cfg(), 12);
    // Crash 5 of 32 peers.
    for i in [3u32, 9, 14, 21, 28] {
        cluster.net.schedule_down(NodeId(i), cluster.net.now());
    }
    cluster.settle(SimTime::from_millis(10));
    let mut succeeded = 0;
    let mut attempts = 0;
    for i in 0..32u32 {
        if !cluster.net.is_up(NodeId(i)) {
            continue;
        }
        attempts += 1;
        let out = cluster.query(NodeId(i), "SELECT ?g WHERE {('auth1','age',?g)}").unwrap();
        // With replication 3, some replica of auth1's leaf survives;
        // individual routes may still dead-end on a crashed ref.
        succeeded += (out.ok && !out.relation.is_empty()) as u32;
        if attempts == 8 {
            break;
        }
    }
    assert!(succeeded >= 5, "replication should mask a crashed minority ({succeeded}/8)");
}

#[test]
fn churn_with_maintenance_keeps_success_rate_up() {
    let mut cfg = robust_cfg().with_maintenance(SimTime::from_secs(5), SimTime::from_secs(10));
    cfg.overlay.ping_timeout = SimTime::from_secs(1);
    let mut cluster = cluster_with_world(32, cfg, 13);
    let mut rng = unistore_util::rng::derive_rng(13, unistore_util::rng::stream::CHURN);
    let churn = ChurnConfig {
        mean_session: SimTime::from_secs(120),
        mean_downtime: SimTime::from_secs(30),
        churn_fraction: 0.4,
    };
    install_churn(&mut cluster.net, &mut rng, &churn, SimTime::from_secs(600));

    let mut succeeded = 0;
    let mut total = 0;
    for round in 0..12 {
        cluster.settle(SimTime::from_secs(45));
        let origin = NodeId((round * 5) % 32);
        if !cluster.net.is_up(origin) {
            continue;
        }
        total += 1;
        let out = cluster.query(origin, "SELECT ?n WHERE {(?a,'name',?n)}").unwrap();
        succeeded += out.ok as u32;
    }
    assert!(total >= 6, "driver should find live origins");
    assert!(
        succeeded * 10 >= total * 6,
        "under churn with maintenance, ≥60% of queries should complete ({succeeded}/{total})"
    );
}

#[test]
fn range_coverage_flags_incompleteness_under_partition() {
    // Crash ALL replicas of some leaf; a full-attribute range query must
    // not silently return a partial answer as complete.
    let mut cfg = UniConfig { query_timeout: SimTime::from_secs(10), ..UniConfig::default() };
    cfg.overlay.query_timeout = SimTime::from_secs(5);
    let mut cluster = cluster_with_world(16, cfg, 14);
    // Take down half the network — some leaf certainly dies entirely.
    for i in 0..8u32 {
        cluster.net.schedule_down(NodeId(i * 2), cluster.net.now());
    }
    cluster.settle(SimTime::from_millis(10));
    let origin = (0..16u32).map(NodeId).find(|&n| cluster.net.is_up(n)).unwrap();
    let oracle_count = {
        let mut o = cluster.oracle();
        o.query("SELECT ?n WHERE {(?a,'name',?n)}").unwrap().len()
    };
    let out = cluster.query(origin, "SELECT ?n WHERE {(?a,'name',?n)}").unwrap();
    // Either the query honestly failed, or it returned fewer rows —
    // never a fabricated complete answer.
    assert!(!out.ok || out.relation.len() <= oracle_count, "no fabricated rows under partition");
    if out.ok {
        assert!(
            out.relation.len() < oracle_count,
            "with half the peers gone some names must be missing"
        );
    }
}

#[test]
fn anti_entropy_propagates_updates_to_lagging_replicas() {
    // One replica misses the write; pull anti-entropy must converge it
    // (paper ref [4] push/pull updates).
    let mut cfg = UniConfig::default()
        .with_replication(3)
        .with_maintenance(SimTime::from_secs(1_000_000_000), SimTime::from_secs(10));
    cfg.overlay.query_timeout = SimTime::from_secs(5);
    let mut cluster = cluster_with_world(12, cfg, 15);

    // Crash one replica of auth0's OID leaf, then update auth0's age.
    let key = unistore_store::index::oid_key(&unistore_store::Oid::new("auth0"));
    let leaf = cluster.leaves().iter().position(|p| p.is_prefix_of_key(key)).unwrap();
    let _ = leaf;
    let old_age = {
        let mut o = cluster.oracle();
        o.query("SELECT ?g WHERE {('auth0','age',?g)}").unwrap().rows[0][0].clone()
    };
    // Find the replica group by asking each node whether it stores the key.
    let holders: Vec<NodeId> = (0..12u32)
        .map(NodeId)
        .filter(|&n| !cluster.net.node(n).overlay.store().get(key).is_empty())
        .collect();
    assert!(holders.len() >= 3, "replication 3 expected, got {holders:?}");
    let lagging = holders[0];
    cluster.net.schedule_down(lagging, cluster.net.now());
    cluster.settle(SimTime::from_millis(1));

    let old = unistore_store::Triple::new("auth0", "age", old_age);
    assert!(cluster.update(NodeId(holders[1].0), &old, unistore_store::Value::Int(77), 1));
    // Drain the update's in-flight replica traffic while the lagging
    // node is still down. The batched write pipeline completes the
    // whole update in ~2 ms of simulated time, so without this the
    // second-hop replica-cascade delete could still be in flight at
    // revival and land on the "lagging" node — which must miss the
    // update entirely for anti-entropy to have something to repair.
    cluster.settle(SimTime::from_millis(50));

    // Revive the lagging replica: it still has the old version.
    cluster.net.schedule_up(lagging, cluster.net.now());
    cluster.settle(SimTime::from_millis(1));
    let stale = cluster.net.node(lagging).overlay.store().get(key);
    assert!(
        stale.iter().any(|t| t.attr.as_ref() == "age" && t.value.as_f64() != Some(77.0)),
        "lagging replica should still hold the stale age"
    );

    // Let anti-entropy run (10 s interval): pulls the new version.
    cluster.settle(SimTime::from_secs(120));
    let after = cluster.net.node(lagging).overlay.store().get(key);
    assert!(
        after.iter().any(|t| t.attr.as_ref() == "age" && t.value.as_f64() == Some(77.0)),
        "anti-entropy must deliver the updated value, got {after:?}"
    );
}

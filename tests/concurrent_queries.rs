//! Concurrent query pipeline: the driver must sustain a window of
//! in-flight queries (admission backpressure, qid-keyed completion
//! routing) and still produce exactly the rows serial execution
//! produces — on both overlay backends, in the simulator and in the
//! live threaded runtime. Also covers the hot-key read path: the
//! node-local result cache must serve repeats and be invalidated by
//! the epoch-stamped stats-delta stream within one dissemination tick.

// The live-runtime tests time out against real wall-clock deadlines.
#![allow(clippy::disallowed_methods)]

use std::time::Duration;

use unistore::backends::{chord_config, ChordUniCluster};
use unistore::live::LiveCluster;
use unistore::{UniCluster, UniConfig};
use unistore_overlay::Overlay;
use unistore_simnet::churn::{install_churn, ChurnConfig};
use unistore_simnet::{NodeId, SimTime};
use unistore_store::{Triple, Tuple, Value};
use unistore_workload::{zipf_read_queries, PubParams, PubWorld};

/// Canonical form: project columns in name order, sort rows.
fn normalize(rel: &unistore_query::Relation) -> Vec<Vec<String>> {
    let mut order: Vec<usize> = (0..rel.schema.len()).collect();
    order.sort_by_key(|&i| rel.schema[i].clone());
    let mut rows: Vec<Vec<String>> = rel
        .rows
        .iter()
        .map(|r| {
            order
                .iter()
                .map(|&i| match &r[i] {
                    v @ (Value::Int(_) | Value::Float(_)) => format!("{}", v.as_f64().unwrap()),
                    Value::Str(s) => format!("'{s}'"),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn world(seed: u64) -> PubWorld {
    PubWorld::generate(&PubParams { n_authors: 40, n_conferences: 10, ..Default::default() }, seed)
}

/// A Zipf-skewed read mix (hot conference values dominate) plus a few
/// structurally heavier queries so completions genuinely interleave.
fn query_mix(w: &PubWorld) -> Vec<String> {
    let mut qs = zipf_read_queries(w, "published_in", 36, 1.5, 9);
    qs.push("SELECT ?n,?t WHERE {(?a,'name',?n) (?a,'has_published',?t)}".into());
    qs.push("SELECT ?n,?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30 AND ?g < 45}".into());
    qs.push(
        "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
         (?p,'title',?t) (?p,'published_in',?conf)}"
            .into(),
    );
    qs.push("SELECT ?c WHERE {(?x,'confname',?c)}".into());
    qs
}

/// The oracle bar for the pipelined driver: submit the whole mix into
/// the admission window, verify the window actually fills to
/// `max_in_flight`, and require every outcome to equal both the serial
/// run and the local reference engine.
fn run_pipelined_matches_serial<O: Overlay<Item = Triple>>(
    mut cluster: UniCluster<O>,
    backend: &str,
) {
    let w = world(91);
    cluster.load(w.all_tuples());
    let queries = query_mix(&w);
    let n = cluster.net.len() as u32;

    let mut oracle = cluster.oracle();
    let expected: Vec<Vec<Vec<String>>> =
        queries.iter().map(|q| normalize(&oracle.query(q).expect("oracle parses"))).collect();

    // Serial pass.
    for (i, q) in queries.iter().enumerate() {
        let out = cluster.query(NodeId(i as u32 % n), q).expect("parses");
        assert!(out.ok, "{backend}: serial query {i} timed out: {q}");
        assert_eq!(normalize(&out.relation), expected[i], "{backend}: serial vs oracle: {q}");
    }

    // Pipelined pass: same queries, same origins, all submitted before
    // any is waited on.
    let qids: Vec<u64> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| cluster.query_submit(NodeId(i as u32 % n), q).expect("parses"))
        .collect();
    assert_eq!(
        cluster.in_flight_len(),
        32,
        "{backend}: the admission window must hold 32 queries in flight"
    );
    let outcomes = cluster.query_wait_all();
    assert_eq!(outcomes.len(), queries.len(), "{backend}: every submission resolves");
    for ((i, qid), (done_qid, out)) in qids.iter().copied().enumerate().zip(outcomes) {
        assert_eq!(qid, done_qid, "{backend}: outcomes arrive in submission order");
        assert!(out.ok, "{backend}: pipelined query {i} timed out: {}", queries[i]);
        assert_eq!(
            normalize(&out.relation),
            expected[i],
            "{backend}: pipelined diverged from serial on query {i}: {}",
            queries[i]
        );
    }
}

/// Churn and the pipelined window together: a full 32-deep
/// `query_submit` window rides over an active churn schedule. Every
/// submission must resolve (no stuck qids — the driver withdraws any
/// query whose deadline budget lapses), the window must drain, and
/// queue-inclusive latency stays within `bound` even for submissions
/// that waited behind the window: one budget of queue wait (the
/// blocking head-of-window query is withdrawn at its budget at the
/// latest) plus one budget in flight.
fn run_pipeline_under_churn<O: Overlay<Item = Triple>>(
    mut cluster: UniCluster<O>,
    bound: SimTime,
    backend: &str,
) {
    let w = world(77);
    cluster.load(w.all_tuples());
    let n = cluster.net.len() as u32;

    let mut rng = unistore_util::rng::derive_rng(77, unistore_util::rng::stream::CHURN);
    let churn = ChurnConfig {
        mean_session: SimTime::from_secs(120),
        mean_downtime: SimTime::from_secs(30),
        churn_fraction: 0.4,
    };
    install_churn(&mut cluster.net, &mut rng, &churn, SimTime::from_secs(1_800));
    cluster.settle(SimTime::from_secs(90)); // churn in full swing

    let queries = query_mix(&w); // 40 submissions > the 32-slot window
    let qids: Vec<u64> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let origin = (0..n)
                .map(|k| NodeId((i as u32 + k) % n))
                .find(|&o| cluster.net.is_up(o))
                .expect("some peer is up");
            cluster.query_submit(origin, q).expect("parses")
        })
        .collect();
    assert_eq!(cluster.in_flight_len(), 32, "{backend}: window must fill under churn");

    let outcomes = cluster.query_wait_all();
    assert_eq!(
        outcomes.len(),
        queries.len(),
        "{backend}: every submission resolves — no stuck qids"
    );
    assert_eq!(cluster.in_flight_len(), 0, "{backend}: the window drains completely");
    let mut ok = 0u32;
    for (i, (qid, out)) in outcomes.iter().enumerate() {
        assert_eq!(*qid, qids[i], "{backend}: outcomes arrive in submission order");
        assert!(
            out.cost.latency <= bound,
            "{backend}: query {i} queue-inclusive latency {:?} exceeds bound {bound:?}",
            out.cost.latency
        );
        ok += out.ok as u32;
    }
    assert!(
        ok as usize * 4 >= queries.len(),
        "{backend}: under churn at least a quarter of the window must still answer \
         ({ok}/{})",
        queries.len()
    );
}

#[test]
fn pipeline_under_churn_pgrid() {
    let mut cfg = UniConfig::default()
        .with_replication(3)
        .with_maintenance(SimTime::from_secs(5), SimTime::from_secs(10))
        .with_max_in_flight(32)
        .with_query_retries(1);
    cfg.overlay.refs_per_level = 4;
    cfg.overlay.ping_timeout = SimTime::from_secs(1);
    cfg.query_timeout = SimTime::from_secs(30);
    cfg.overlay.query_timeout = SimTime::from_secs(8);
    // budget = query_timeout × (retries + 2) = 90 s; bound = 2 × budget.
    run_pipeline_under_churn(UniCluster::build(24, cfg, 77), SimTime::from_secs(180), "p-grid");
}

#[test]
fn pipeline_under_churn_chord() {
    let mut cfg = chord_config().with_max_in_flight(32).with_query_retries(1);
    cfg.query_timeout = SimTime::from_secs(30);
    cfg.overlay.replicate = true;
    cfg.overlay.anti_entropy_interval = SimTime::from_secs(30);
    cfg.overlay.query_timeout = SimTime::from_secs(8);
    run_pipeline_under_churn(
        ChordUniCluster::build_overlay(24, cfg, 77),
        SimTime::from_secs(180),
        "chord",
    );
}

#[test]
fn pipelined_matches_serial_pgrid() {
    let cfg = UniConfig::default().with_max_in_flight(32);
    run_pipelined_matches_serial(UniCluster::build(16, cfg, 91), "p-grid");
}

#[test]
fn pipelined_matches_serial_chord() {
    let cfg = chord_config().with_max_in_flight(32);
    run_pipelined_matches_serial(ChordUniCluster::build_overlay(16, cfg, 91), "chord");
}

/// Regression for the live runtime's event loop: with two overlapping
/// queries, the completion of the one *not* currently being waited on
/// used to be read off the shared channel and dropped, leaving its
/// waiter to time out. It must be buffered and re-delivered instead —
/// in both wait orders.
#[test]
fn live_overlapping_completions_are_buffered_not_dropped() {
    let w = world(92);
    let mut live = LiveCluster::start(4, UniConfig::default(), w.all_tuples(), 92);
    let heavy = "SELECT ?n,?conf WHERE {(?a,'name',?n) (?a,'has_published',?t)
                 (?p,'title',?t) (?p,'published_in',?conf)}";
    let cheap = "SELECT ?a WHERE {(?a,'name','alice-0')}";
    let t = Duration::from_secs(30);

    let expect_heavy = normalize(&live.query(NodeId(0), heavy, t).unwrap().expect("serial heavy"));
    let expect_cheap = normalize(&live.query(NodeId(1), cheap, t).unwrap().expect("serial cheap"));
    assert!(!expect_cheap.is_empty(), "alice-0 exists in this world");

    // Wait the heavy one first: the cheap completion lands mid-wait
    // and must survive buffered.
    let qa = live.query_submit(NodeId(0), heavy, t).unwrap();
    let qb = live.query_submit(NodeId(1), cheap, t).unwrap();
    let ra = live.query_wait(qa).expect("heavy answers");
    let rb = live.query_wait(qb).expect("cheap answers after being buffered");
    assert_eq!(normalize(&ra), expect_heavy, "heavy rows (wait heavy first)");
    assert_eq!(normalize(&rb), expect_cheap, "cheap rows (wait heavy first)");

    // And the reverse order: the heavy completion may arrive while
    // waiting on the cheap one during a later submission round.
    let qa = live.query_submit(NodeId(0), heavy, t).unwrap();
    let qb = live.query_submit(NodeId(1), cheap, t).unwrap();
    let rb = live.query_wait(qb).expect("cheap answers");
    let ra = live.query_wait(qa).expect("heavy answers");
    assert_eq!(normalize(&ra), expect_heavy, "heavy rows (wait cheap first)");
    assert_eq!(normalize(&rb), expect_cheap, "cheap rows (wait cheap first)");

    // A full pipelined window for good measure: everything resolves.
    let queries = zipf_read_queries(&w, "published_in", 8, 1.2, 13);
    let mut expect = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        expect.push(normalize(&live.query(NodeId(i as u32 % 4), q, t).unwrap().expect("serial")));
    }
    let qids: Vec<u64> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| live.query_submit(NodeId(i as u32 % 4), q, t).unwrap())
        .collect();
    let outcomes = live.query_wait_all();
    assert_eq!(outcomes.len(), qids.len());
    for ((i, qid), (done_qid, rel)) in qids.iter().copied().enumerate().zip(outcomes) {
        assert_eq!(qid, done_qid);
        let rel = rel.unwrap_or_else(|| panic!("pipelined live query {i} timed out"));
        assert_eq!(normalize(&rel), expect[i], "live pipelined diverged on query {i}");
    }
    live.shutdown();
}

/// An already-expired deadline must return a clean timeout immediately
/// (the old code fed `remaining == 0` into `recv_timeout` and could
/// spin); and a timed-out waiter must not poison later queries.
#[test]
fn live_zero_remaining_budget_times_out_cleanly() {
    let w = world(93);
    let mut live = LiveCluster::start(4, UniConfig::default(), w.all_tuples(), 93);
    let q = "SELECT ?n WHERE {(?a,'name',?n)}";
    let started = std::time::Instant::now();
    let out = live.query(NodeId(0), q, Duration::ZERO).expect("parses");
    assert!(out.is_none(), "zero budget cannot answer");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "zero-budget query must fail fast, not busy-loop"
    );
    // The runtime still answers afterwards (the stale completion of the
    // zero-budget query is dropped, not delivered to this waiter).
    let rel = live.query(NodeId(1), q, Duration::from_secs(30)).unwrap().expect("answers");
    assert_eq!(rel.len(), 40, "all authors, no cross-talk from the timed-out query");
    live.shutdown();
}

const STATS_TICK: SimTime = SimTime::from_secs(2);

/// The hot-key result cache: repeats served node-locally, and a routed
/// write from *another* node invalidates cached entries within one
/// stats-dissemination tick; a write at the caching origin itself
/// invalidates immediately via the in-band delta.
fn run_cache_invalidation<O: Overlay<Item = Triple>>(mut cluster: UniCluster<O>, backend: &str) {
    cluster.load(world(94).all_tuples());
    for i in 0..3u32 {
        let t = Tuple::new(&format!("item{i}")).with("rating", Value::Int(2));
        let (ok, _) = cluster.insert_tuple(NodeId(5), &t);
        assert!(ok, "{backend}: seed insert {i} acked");
    }
    cluster.settle(STATS_TICK + SimTime::from_secs(1));

    let q = "SELECT ?x WHERE {(?x,'rating',2)}";
    let reader = NodeId(1);
    let first = cluster.query(reader, q).expect("parses");
    assert!(first.ok, "{backend}: first read answers");
    assert_eq!(first.relation.len(), 3, "{backend}: three seeded items");
    let repeat = cluster.query(reader, q).expect("parses");
    assert_eq!(
        normalize(&repeat.relation),
        normalize(&first.relation),
        "{backend}: cached repeat must equal the first read"
    );
    let hits: u64 =
        (0..cluster.net.len()).map(|i| cluster.net.node(NodeId(i as u32)).cache_hits).sum();
    assert!(hits > 0, "{backend}: the repeat must be served from the result cache");

    // Routed write from a different node: the reader's cached entry
    // goes stale and must be dropped once the writer's stats tick
    // disseminates the delta.
    let (ok, _) =
        cluster.insert_tuple(NodeId(9), &Tuple::new("item3").with("rating", Value::Int(2)));
    assert!(ok, "{backend}: remote write acked");
    cluster.settle(STATS_TICK + SimTime::from_secs(1));
    let fresh = cluster.query(reader, q).expect("parses");
    assert!(fresh.ok, "{backend}: post-write read answers");
    assert_eq!(
        fresh.relation.len(),
        4,
        "{backend}: a cached read after a routed write must see the new row within one tick"
    );

    // Write at the caching node itself: the in-band delta invalidates
    // without waiting for a tick.
    let warm = cluster.query(reader, q).expect("parses");
    assert_eq!(warm.relation.len(), 4, "{backend}: warm the cache again");
    let (ok, _) = cluster.insert_tuple(reader, &Tuple::new("item4").with("rating", Value::Int(2)));
    assert!(ok, "{backend}: origin write acked");
    cluster.settle(SimTime::from_millis(10));
    let fresh = cluster.query(reader, q).expect("parses");
    assert_eq!(
        fresh.relation.len(),
        5,
        "{backend}: the write origin invalidates its own cache immediately"
    );
}

#[test]
fn cache_invalidation_pgrid() {
    let cfg = UniConfig::default().with_result_cache(64).with_stats_refresh(STATS_TICK);
    run_cache_invalidation(UniCluster::build(16, cfg, 94), "p-grid");
}

#[test]
fn cache_invalidation_chord() {
    let cfg = chord_config().with_result_cache(64).with_stats_refresh(STATS_TICK);
    run_cache_invalidation(ChordUniCluster::build_overlay(16, cfg, 94), "chord");
}

/// Under message loss the origin re-dispatches timed-out plans; the
/// superseded attempt's results still arrive later. Attempt stamping at
/// the node plus the driver's in-flight table must drop those stale
/// completions: every delivered outcome is oracle-exact, and a second
/// clean wave sees no cross-talk from first-wave retries.
#[test]
fn stale_retry_completions_never_corrupt_results() {
    let w = world(95);
    let mut cfg = UniConfig::default().with_max_in_flight(16);
    cfg.query_timeout = SimTime::from_secs(30);
    cfg.overlay.query_timeout = SimTime::from_secs(8);
    let mut cluster = UniCluster::build(16, cfg, 95);
    cluster.load(w.all_tuples());
    let queries = zipf_read_queries(&w, "published_in", 20, 1.2, 17);
    let mut oracle = cluster.oracle();
    let expected: Vec<Vec<Vec<String>>> =
        queries.iter().map(|q| normalize(&oracle.query(q).unwrap())).collect();

    cluster.net.set_loss_rate(0.03);
    let qids: Vec<u64> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| cluster.query_submit(NodeId(i as u32 % 16), q).unwrap())
        .collect();
    let outcomes = cluster.query_wait_all();
    let mut ok_count = 0usize;
    for ((i, qid), (done_qid, out)) in qids.iter().copied().enumerate().zip(outcomes) {
        assert_eq!(qid, done_qid);
        if out.ok {
            ok_count += 1;
            assert_eq!(
                normalize(&out.relation),
                expected[i],
                "lossy query {i}: a delivered result must still be exact: {}",
                queries[i]
            );
        }
    }
    assert!(ok_count >= 15, "3% loss with retries should answer most queries ({ok_count}/20)");

    // Clean second wave: any straggler completions from superseded
    // first-wave attempts must be dropped, not delivered here.
    cluster.net.set_loss_rate(0.0);
    for (i, q) in queries.iter().enumerate() {
        let out = cluster.query(NodeId(i as u32 % 16), q).expect("parses");
        assert!(out.ok, "clean wave query {i} answers");
        assert_eq!(normalize(&out.relation), expected[i], "clean wave query {i} exact");
    }
}

//! Staleness regression suite for the incremental statistics subsystem.
//!
//! A brand-new attribute inserted through the routed path must become
//! visible to the planners without any rebuild or restart: the write
//! origin folds the delta in immediately, every other node converges
//! after one stats-refresh tick, and in the meantime the unknown-attr
//! floor keeps ghost-attribute plans from looking free. Verified on
//! BOTH overlay backends, in the simulator and the live runtime.

// The live-runtime halves of this suite genuinely wait on real time.
#![allow(clippy::disallowed_methods)]

use std::time::Duration;

use unistore::backends::{chord_config, ChordLiveCluster, ChordUniCluster};
use unistore::live::LiveCluster;
use unistore::{UniCluster, UniConfig};
use unistore_overlay::Overlay;
use unistore_simnet::{NodeId, SimTime};
use unistore_store::{Triple, Tuple, Value};
use unistore_workload::{PubParams, PubWorld};

const STATS_TICK: SimTime = SimTime::from_secs(2);

fn base_world(seed: u64) -> Vec<Tuple> {
    PubWorld::generate(&PubParams { n_authors: 20, n_conferences: 6, ..Default::default() }, seed)
        .all_tuples()
}

/// Routed inserts of a never-seen attribute: the driver's master model
/// absorbs the delta at once, the origin node on message receipt, and
/// every remaining node within one dissemination tick — no rescans, no
/// restarts.
fn run_simulated<O: Overlay<Item = Triple>>(mut cluster: UniCluster<O>, backend: &str) {
    cluster.load(base_world(77));
    assert!(
        !cluster.cost_model().unwrap().stats.attrs.contains_key("rating"),
        "{backend}: world must not know the attribute yet"
    );
    let origin = NodeId(3);
    for i in 0..5u32 {
        let tuple = Tuple::new(&format!("item{i}")).with("rating", Value::Int(1 + (i % 3) as i64));
        let (ok, _) = cluster.insert_tuple(origin, &tuple);
        assert!(ok, "{backend}: routed insert {i} must be acked");
    }

    // Driver master model: fresh immediately (it fed the oracle too).
    let master = cluster.cost_model().unwrap();
    let rating = master.stats.attrs.get("rating").expect("master learned the attribute");
    assert_eq!(rating.count, 5.0, "{backend}: master count");
    assert_eq!(rating.distinct, 3.0, "{backend}: master distinct");

    // Origin node: fresh as soon as the in-band delta delivers.
    cluster.settle(SimTime::from_millis(10));
    let origin_stats = cluster.net.node(origin).cost.as_ref().expect("model distributed");
    assert_eq!(
        origin_stats.stats.attrs.get("rating").map(|a| a.count),
        Some(5.0),
        "{backend}: origin node must fold the write delta in without restart"
    );

    // Query through the routed path: oracle-identical rows, and the
    // planner's strategy choice is driven by the post-insert statistics
    // (an exact-match lookup on a now-known attribute), not by a
    // zero-cost ghost-attribute estimate.
    let q = "SELECT ?x WHERE {(?x,'rating',2)}";
    let expected = {
        let mut oracle = cluster.oracle();
        let mut rows: Vec<String> =
            oracle.query(q).unwrap().rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    };
    assert!(!expected.is_empty(), "{backend}: the oracle sees the inserted facts");
    let out = cluster.query(origin, q).unwrap();
    assert!(out.ok, "{backend}: query over the fresh attribute answers");
    let mut got: Vec<String> = out.relation.rows.iter().map(|r| format!("{r:?}")).collect();
    got.sort();
    assert_eq!(got, expected, "{backend}: distributed result diverged from oracle");
    let traces = cluster.take_traces();
    let decision = traces
        .iter()
        .find(|d| d.pattern.contains("rating"))
        .expect("the rating scan was planned somewhere");
    assert_eq!(
        decision.choice, "av-lookup",
        "{backend}: planner must price the fresh attribute as an exact lookup"
    );

    // Every other node converges within one dissemination tick.
    cluster.settle(STATS_TICK + SimTime::from_secs(1));
    for peer in 0..cluster.net.len() {
        let stats = cluster.net.node(NodeId(peer as u32)).cost.as_ref().unwrap();
        assert_eq!(
            stats.stats.attrs.get("rating").map(|a| a.count),
            Some(5.0),
            "{backend}: node {peer} must observe the post-insert statistics after the tick"
        );
    }
}

#[test]
fn simulated_pgrid_nodes_observe_runtime_inserts() {
    let cfg = UniConfig::default().with_stats_refresh(STATS_TICK);
    run_simulated(UniCluster::build(16, cfg, 31), "p-grid");
}

#[test]
fn simulated_chord_nodes_observe_runtime_inserts() {
    let cfg = chord_config().with_stats_refresh(STATS_TICK);
    run_simulated(ChordUniCluster::build_overlay(16, cfg, 32), "chord");
}

/// A full rebuild (second bulk load) already contains every routed
/// write; deltas still buffered or in flight from before the rebuild
/// carry the old epoch and must be dropped, never double-counted.
#[test]
fn rebuild_discards_stale_in_flight_deltas() {
    let cfg = UniConfig::default().with_stats_refresh(STATS_TICK);
    let mut cluster = UniCluster::build(16, cfg, 35);
    cluster.load(base_world(80));
    // The routed write leaves its injected StatsDelta undelivered (the
    // driver does not step the network between operations).
    let (ok, _) = cluster.insert_tuple(NodeId(3), &Tuple::new("x1").with("rating", Value::Int(5)));
    assert!(ok);
    // Second bulk load: full rebuild, new epoch; x1 is in the rebuild.
    cluster.load(vec![Tuple::new("x2").with("rating", Value::Int(7))]);
    // Deliver everything stale and run a dissemination tick.
    cluster.settle(STATS_TICK + SimTime::from_secs(1));
    assert_eq!(
        cluster.cost_model().unwrap().stats.attrs.get("rating").map(|a| a.count),
        Some(2.0),
        "master model must count each write exactly once"
    );
    for peer in 0..cluster.net.len() {
        let stats = cluster.net.node(NodeId(peer as u32)).cost.as_ref().unwrap();
        assert_eq!(
            stats.stats.attrs.get("rating").map(|a| a.count),
            Some(2.0),
            "node {peer} double-counted a stale pre-rebuild delta"
        );
    }
}

/// The live threaded runtime: runtime inserts reach the origin's model
/// in-band, remote nodes converge on the wall-clock stats tick, and the
/// inserted facts answer queries — all without restarting anything.
fn run_live<O: Overlay<Item = Triple>>(mut live: LiveCluster<O>, backend: &str) {
    let origin = NodeId(0);
    let tuple = Tuple::new("m1").with("rating", Value::Int(5)).with("stars", Value::Int(4));
    assert!(
        live.insert_tuple(origin, &tuple, Duration::from_secs(20)),
        "{backend}: live routed insert must be acked"
    );

    // The origin folds the delta in on receipt.
    let (_, attrs) = live.stats_probe(origin, Duration::from_secs(5)).expect("probe answers");
    assert_eq!(
        attrs.iter().find(|(a, _)| a.as_ref() == "rating").map(|(_, c)| *c),
        Some(1.0),
        "{backend}: origin must observe the runtime insert immediately"
    );

    // The inserted facts answer queries from any node.
    let rel = live
        .query(NodeId(1), "SELECT ?x WHERE {(?x,'rating',5)}", Duration::from_secs(20))
        .expect("parses")
        .expect("answers within deadline");
    assert_eq!(rel.rows, vec![vec![Value::str("m1")]]);

    // A remote node converges without restart once the tick fires.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let fresh = live
            .stats_probe(NodeId(2), Duration::from_secs(5))
            .and_then(|(_, attrs)| attrs.iter().find(|(a, _)| a.as_ref() == "rating").cloned());
        if fresh.is_some() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{backend}: remote node never converged to the fresh statistics"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    live.shutdown();
}

#[test]
fn live_pgrid_nodes_observe_runtime_inserts() {
    let cfg = UniConfig::default().with_stats_refresh(SimTime::from_millis(100));
    run_live(LiveCluster::start(4, cfg, base_world(78), 33), "p-grid");
}

#[test]
fn live_chord_nodes_observe_runtime_inserts() {
    let cfg = chord_config().with_stats_refresh(SimTime::from_millis(100));
    run_live(ChordLiveCluster::start_overlay(4, cfg, base_world(79), 34), "chord");
}

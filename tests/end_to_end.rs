//! End-to-end scenarios across the full stack: protocol inserts,
//! updates, optimizer behaviour, mutant-plan travel, the live threaded
//! runtime.

use std::time::Duration;

use unistore::config::ScanPref;
use unistore::{PlanMode, UniCluster, UniConfig};
use unistore_query::JoinStrategy;
use unistore_simnet::{NodeId, SimTime};
use unistore_store::index::{attr_value_key, oid_key};
use unistore_store::{Oid, Triple, Tuple, Value};
use unistore_workload::{PubParams, PubWorld};

fn small_world(seed: u64) -> Vec<Tuple> {
    PubWorld::generate(&PubParams { n_authors: 25, n_conferences: 8, ..Default::default() }, seed)
        .all_tuples()
}

#[test]
fn protocol_insert_then_query() {
    let mut cluster = UniCluster::build(16, UniConfig::default(), 1);
    cluster.load(small_world(1));
    // Insert a brand-new author over the routed protocol path.
    let tuple = Tuple::new("auth-new").with("name", Value::str("zed")).with("age", Value::Int(29));
    let (ok, cost) = cluster.insert_tuple(NodeId(2), &tuple);
    assert!(ok, "protocol insert must be acked");
    assert!(cost.messages > 0, "inserts traverse the overlay");
    assert!(cost.hops > 0, "write-path cost must report the real routed hop count");
    let out =
        cluster.query(NodeId(9), "SELECT ?g WHERE {(?a,'name','zed') (?a,'age',?g)}").unwrap();
    assert!(out.ok);
    assert_eq!(out.relation.rows, vec![vec![Value::Int(29)]]);
}

#[test]
fn protocol_delete_removes_fact_from_every_index() {
    let mut cluster = UniCluster::build(16, UniConfig::default(), 21);
    cluster.load(small_world(21));
    let old = Triple::new("auth0", "age", {
        let mut o = cluster.oracle();
        let r = o.query("SELECT ?g WHERE {('auth0','age',?g)}").unwrap();
        r.rows[0][0].clone()
    });
    assert!(cluster.delete(NodeId(4), &old, 1));
    let out = cluster.query(NodeId(5), "SELECT ?g WHERE {('auth0','age',?g)}").unwrap();
    assert!(out.ok);
    assert!(out.relation.rows.is_empty(), "deleted fact must vanish from the OID index");
    let old_val = old.value.as_f64().unwrap() as i64;
    let out =
        cluster.query(NodeId(7), &format!("SELECT ?x WHERE {{(?x,'age',{old_val})}}")).unwrap();
    assert!(
        !out.relation.rows.iter().any(|r| r[0] == Value::str("auth0")),
        "deleted fact must vanish from the A#v index"
    );
    // The driver view (and thus the oracle) shed the triple too.
    assert!(!cluster
        .triples()
        .iter()
        .any(|t| t.oid.as_str() == "auth0" && t.attr.as_ref() == "age"));
}

#[test]
fn update_supersedes_old_value_in_all_indexes() {
    let mut cluster = UniCluster::build(16, UniConfig::default(), 2);
    cluster.load(small_world(2));
    let old = Triple::new("auth0", "age", {
        // Read the current age through the oracle.
        let mut o = cluster.oracle();
        let r = o.query("SELECT ?g WHERE {('auth0','age',?g)}").unwrap();
        r.rows[0][0].clone()
    });
    assert!(cluster.update(NodeId(3), &old, Value::Int(99), 1));
    // New value visible via the OID index…
    let out = cluster.query(NodeId(5), "SELECT ?g WHERE {('auth0','age',?g)}").unwrap();
    assert_eq!(out.relation.rows, vec![vec![Value::Int(99)]]);
    // …and via the A#v index; the old entry is gone.
    let out = cluster.query(NodeId(7), "SELECT ?a WHERE {(?a,'age',99)}").unwrap();
    assert_eq!(out.relation.len(), 1);
    let old_val = old.value.as_f64().unwrap() as i64;
    let out =
        cluster.query(NodeId(7), &format!("SELECT ?x WHERE {{(?x,'age',{old_val})}}")).unwrap();
    assert!(
        !out.relation.rows.iter().any(|r| r[0] == Value::str("auth0")),
        "stale A#v entry must be deleted"
    );
}

#[test]
fn raw_storage_lookup_by_each_index() {
    let mut cluster = UniCluster::build(16, UniConfig::default(), 3);
    cluster.load(small_world(3));
    // OID index: all triples of one logical tuple (paper Fig. 2).
    let (items, cost) = cluster.raw_lookup(NodeId(0), oid_key(&Oid::new("auth1")));
    assert!(items.len() >= 4, "auth1 has at least 4 attributes, got {}", items.len());
    assert!(items.iter().all(|t| t.oid.as_str() == "auth1"));
    assert!(cost.hops as f64 <= (cluster.net.len() as f64).log2() + 1.0);
    // A#v index: exact (attr, value).
    let age = items
        .iter()
        .find(|t| t.attr.as_ref() == "age")
        .map(|t| t.value.clone())
        .expect("age attribute");
    let (items2, _) = cluster.raw_lookup(NodeId(4), attr_value_key("age", &age));
    assert!(items2.iter().any(|t| t.oid.as_str() == "auth1"));
}

#[test]
fn forced_strategies_agree_on_results_but_not_cost() {
    // Paper §4: "execute identical queries sequentially while
    // influencing the integrated optimizer … different performance
    // results".
    let world = small_world(4);
    let q = "SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<2}";
    let mut results = Vec::new();
    for pref in [ScanPref::QGram, ScanPref::NaiveSimilarity] {
        let mut cluster = UniCluster::build(32, UniConfig::default(), 4);
        cluster.load(world.clone());
        cluster.set_plan_mode(PlanMode { scan_pref: Some(pref), ..Default::default() });
        let out = cluster.query(NodeId(1), q).unwrap();
        assert!(out.ok);
        let traces = cluster.take_traces();
        assert!(!traces.is_empty());
        results.push((normalize_strings(&out.relation), out.cost.messages, traces));
    }
    assert_eq!(results[0].0, results[1].0, "identical answers under both plans");
    assert_ne!(results[0].1, results[1].1, "different plans, different message cost");
    // The forced choices really were taken.
    assert!(results[0].2.iter().any(|d| d.choice == "qgram"));
    assert!(results[1].2.iter().any(|d| d.choice.starts_with("av-range")));
}

#[test]
fn optimizer_choice_is_never_worse_than_both_forced_plans_much() {
    let world = small_world(5);
    let q = "SELECT ?s WHERE {(?c,'series',?s) FILTER edist(?s,'ICDE')<2}";
    let run = |pref: Option<ScanPref>| {
        let mut cluster = UniCluster::build(32, UniConfig::default(), 5);
        cluster.load(world.clone());
        cluster.set_plan_mode(PlanMode { scan_pref: pref, ..Default::default() });
        cluster.query(NodeId(1), q).unwrap().cost.messages
    };
    let auto = run(None);
    let a = run(Some(ScanPref::QGram));
    let b = run(Some(ScanPref::NaiveSimilarity));
    assert!(
        auto <= a.max(b),
        "cost-based choice ({auto}) must not exceed the worse forced plan ({})",
        a.max(b)
    );
}

#[test]
fn fetch_join_vs_collect_join() {
    let world = small_world(6);
    // Selective left side (one author) joining into publications: the
    // fetch join should win and be chosen by the optimizer.
    let q = "SELECT ?t,?conf WHERE {(?a,'name','alice-0') (?a,'has_published',?t)
             (?p,'title',?t) (?p,'published_in',?conf)}";
    let mut cluster = UniCluster::build(32, UniConfig::default(), 6);
    cluster.load(world.clone());
    let out_auto = cluster.query(NodeId(0), q).unwrap();
    let traces = cluster.take_traces();
    assert!(out_auto.ok);
    assert!(
        traces.iter().any(|d| d.choice == "fetch-join"),
        "selective join should fetch; trace: {traces:?}"
    );
    // Forcing collect gives the same rows.
    cluster
        .set_plan_mode(PlanMode { join_pref: Some(JoinStrategy::Collect), ..Default::default() });
    let out_collect = cluster.query(NodeId(0), q).unwrap();
    assert_eq!(normalize_strings(&out_auto.relation), normalize_strings(&out_collect.relation));
}

#[test]
fn mutant_plans_travel_unless_disabled() {
    let world = small_world(7);
    let q = "SELECT ?v WHERE {('auth3','age',?v)}";
    // Forwarding on: the plan routes to the OID leaf.
    let mut cluster = UniCluster::build(32, UniConfig::default(), 7);
    cluster.load(world.clone());
    let with_fwd = cluster.query(NodeId(1), q).unwrap();
    assert!(with_fwd.ok);
    // Forwarding off: same answer, executed from the origin.
    cluster.set_plan_mode(PlanMode { no_forward: true, ..Default::default() });
    let without = cluster.query(NodeId(1), q).unwrap();
    assert_eq!(normalize_strings(&with_fwd.relation), normalize_strings(&without.relation));
}

#[test]
fn query_timeout_reports_failure_not_hang() {
    let cfg = UniConfig { query_timeout: SimTime::from_secs(5), ..UniConfig::default() };
    let mut cluster = UniCluster::build(8, cfg, 8);
    cluster.load(small_world(8));
    // Partition the network: everything every peer sends is lost.
    cluster.net.set_loss_rate(1.0);
    let out = cluster.query(NodeId(0), "SELECT ?n WHERE {(?a,'name',?n)}").unwrap();
    assert!(!out.ok, "a partitioned query must time out, not succeed");
}

#[test]
fn live_threaded_runtime_answers_queries() {
    use unistore::live::LiveCluster;
    let tuples = vec![
        Tuple::new("p1").with("name", Value::str("alice")).with("age", Value::Int(30)),
        Tuple::new("p2").with("name", Value::str("bob")).with("age", Value::Int(40)),
        Tuple::new("p3").with("name", Value::str("carol")).with("age", Value::Int(50)),
    ];
    let mut live = LiveCluster::start(4, UniConfig::default(), tuples, 9);
    let rel = live
        .query(
            NodeId(0),
            "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 40}",
            Duration::from_secs(10),
        )
        .expect("parses")
        .expect("answers within deadline");
    assert_eq!(rel.len(), 2);
    live.shutdown();
}

#[test]
fn batched_insert_coalesces_messages_and_matches_per_op_results() {
    // The same 16-tuple ingest through the batch pipeline and through
    // the per-op fan-out: identical observable state, a fraction of the
    // messages, one aggregated completion per batch.
    let tuples: Vec<Tuple> = (0..16)
        .map(|i| {
            Tuple::new(&format!("batch-obj{i}"))
                .with("name", Value::str(&format!("batchy-{i}")))
                .with("age", Value::Int(20 + i))
        })
        .collect();
    let mut batched = UniCluster::build(16, UniConfig::default(), 31);
    batched.load(small_world(31));
    let (ok, cost_batched) = batched.insert_batch(NodeId(2), &tuples);
    assert!(ok, "batched insert must be fully acked");
    assert!(cost_batched.hops > 0, "batch completion reports real routed hops");

    let mut per_op = UniCluster::build(16, UniConfig::default().with_batch_writes(false), 31);
    per_op.load(small_world(31));
    let mut per_op_msgs = 0u64;
    for t in &tuples {
        let (ok, c) = per_op.insert_tuple(NodeId(2), t);
        assert!(ok, "per-op insert must be acked");
        per_op_msgs += c.messages;
    }
    assert!(
        cost_batched.messages * 3 <= per_op_msgs,
        "64-op batches must coalesce messages (batched {} vs per-op {per_op_msgs})",
        cost_batched.messages
    );
    for q in [
        "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 30}",
        "SELECT ?g WHERE {('batch-obj3','age',?g)}",
    ] {
        let a = batched.query(NodeId(5), q).unwrap();
        let b = per_op.query(NodeId(5), q).unwrap();
        assert!(a.ok && b.ok);
        assert_eq!(
            normalize_strings(&a.relation),
            normalize_strings(&b.relation),
            "batched and per-op loads must agree: {q}"
        );
    }
}

#[test]
fn same_value_update_is_a_deterministic_refresh() {
    // Updating a fact to its current value keeps the logical identity,
    // so delete+insert of one ident at one version would be
    // order-dependent across the batch's forks; the refresh path skips
    // the deletes and must leave the fact queryable.
    let mut cluster = UniCluster::build(16, UniConfig::default(), 78);
    cluster.load(small_world(78));
    let old_age = {
        let mut o = cluster.oracle();
        o.query("SELECT ?g WHERE {('auth0','age',?g)}").unwrap().rows[0][0].clone()
    };
    let old = Triple::new("auth0", "age", old_age.clone());
    assert!(cluster.update(NodeId(3), &old, old_age, 1));
    let out = cluster.query(NodeId(5), "SELECT ?g WHERE {('auth0','age',?g)}").unwrap();
    assert!(out.ok);
    assert_eq!(out.relation.rows.len(), 1, "same-value update must keep the fact queryable");
}

#[test]
fn live_runtime_batched_insert_then_query() {
    use unistore::live::LiveCluster;
    let base = vec![Tuple::new("p1").with("name", Value::str("alice")).with("age", Value::Int(30))];
    let mut live = LiveCluster::start(4, UniConfig::default(), base, 33);
    let newcomers: Vec<Tuple> = (0..4)
        .map(|i| {
            Tuple::new(&format!("n{i}"))
                .with("name", Value::str(&format!("newbie-{i}")))
                .with("age", Value::Int(60 + i))
        })
        .collect();
    assert!(
        live.insert_batch(NodeId(1), &newcomers, Duration::from_secs(20)),
        "live batched insert must be acked"
    );
    let rel = live
        .query(
            NodeId(0),
            "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 60}",
            Duration::from_secs(10),
        )
        .expect("parses")
        .expect("answers within deadline");
    assert_eq!(rel.len(), 4, "all batched tuples visible at runtime");
    live.shutdown();
}

#[test]
fn chord_backend_protocol_insert_update_and_query() {
    use unistore::backends::{chord_config, ChordUniCluster};
    // The routed write path over the ring backend: every insert pays
    // both indexes; updates delete the stale entries from both.
    let mut cluster = ChordUniCluster::build_overlay(16, chord_config(), 11);
    cluster.load(small_world(11));
    let tuple = Tuple::new("auth-new").with("name", Value::str("zed")).with("age", Value::Int(29));
    let (ok, cost) = cluster.insert_tuple(NodeId(2), &tuple);
    assert!(ok, "protocol insert must be acked");
    assert!(cost.messages > 0, "inserts traverse the ring");
    assert!(cost.hops > 0, "write-path cost must report the real routed hop count");
    let out =
        cluster.query(NodeId(9), "SELECT ?g WHERE {(?a,'name','zed') (?a,'age',?g)}").unwrap();
    assert!(out.ok);
    assert_eq!(out.relation.rows, vec![vec![Value::Int(29)]]);

    // Update through the protocol path supersedes every index entry.
    let old = Triple::new("auth-new", "age", Value::Int(29));
    assert!(cluster.update(NodeId(3), &old, Value::Int(99), 1));
    let out = cluster.query(NodeId(5), "SELECT ?g WHERE {('auth-new','age',?g)}").unwrap();
    assert_eq!(out.relation.rows, vec![vec![Value::Int(99)]]);
    let out = cluster.query(NodeId(7), "SELECT ?x WHERE {(?x,'age',29)}").unwrap();
    assert!(
        !out.relation.rows.iter().any(|r| r[0] == Value::str("auth-new")),
        "stale A#v entry must be deleted from the bucket index too"
    );
}

#[test]
fn live_threaded_runtime_answers_queries_over_chord() {
    use unistore::backends::{chord_config, ChordLiveCluster};
    let tuples = vec![
        Tuple::new("p1").with("name", Value::str("alice")).with("age", Value::Int(30)),
        Tuple::new("p2").with("name", Value::str("bob")).with("age", Value::Int(40)),
        Tuple::new("p3").with("name", Value::str("carol")).with("age", Value::Int(50)),
    ];
    let mut live = ChordLiveCluster::start_overlay(4, chord_config(), tuples, 12);
    let rel = live
        .query(
            NodeId(0),
            "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 40}",
            Duration::from_secs(10),
        )
        .expect("parses")
        .expect("answers within deadline");
    assert_eq!(rel.len(), 2);
    live.shutdown();
}

fn normalize_strings(rel: &unistore_query::Relation) -> Vec<String> {
    let mut v: Vec<String> = rel.rows.iter().map(|r| format!("{r:?}")).collect();
    v.sort();
    v
}

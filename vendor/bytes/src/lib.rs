//! Offline shim for the subset of `bytes 1.x` used by this workspace.
//!
//! `Bytes` is a cheaply clonable, sliceable view into shared immutable
//! storage; `BytesMut` is an append buffer. Integer accessors are
//! big-endian, matching the real crate.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Shared immutable byte view. Cloning and slicing are O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range for length {}",
            self.len()
        );
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to({at}) out of range for length {}", self.len());
        let head = self.slice(..at);
        self.start += at;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Self {
        Bytes::from(b.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(self.as_slice(), f)
    }
}

fn debug_bytes(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        for esc in std::ascii::escape_default(b) {
            write!(f, "{}", esc as char)?;
        }
    }
    write!(f, "\"")
}

/// Growable append buffer; `freeze` converts to [`Bytes`] (one copy-free
/// move of the backing allocation).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.buf.extend_from_slice(other);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(&self.buf, f)
    }
}

/// Read cursor over a byte source. All integer accessors are big-endian
/// and panic when fewer than the required bytes remain (as in the real
/// crate; decoders guard with `remaining`/`has_remaining`).
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance({cnt}) out of range for length {}", self.len());
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.split_to(len)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor. Integer writers are big-endian.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(b"abc");
        assert_eq!(buf.len(), 12);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 12);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64(), 0x0102_0304_0506_0708);
        let tail = b.copy_to_bytes(3);
        assert_eq!(&tail[..], b"abc");
        assert!(!b.has_remaining());
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = BytesMut::new();
        buf.put_u64(1);
        assert_eq!(&buf[..], &[0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from_static(b"hello world");
        let w = b.slice(6..);
        assert_eq!(&w[..], b"world");
        assert_eq!(b.slice(0..5), Bytes::from_static(b"hello"));
        assert_eq!(b.len(), 11, "slicing must not consume the source");
    }

    #[test]
    #[should_panic]
    fn slice_out_of_range_panics() {
        Bytes::from_static(b"xy").slice(0..3);
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from_static(b"abcdef");
        let head = b.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&b[..], b"cdef");
    }
}

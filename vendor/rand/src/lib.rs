//! Offline shim for the subset of `rand 0.8` used by this workspace.
//!
//! See `vendor/README.md`. `StdRng` is xoshiro256++ seeded via SplitMix64;
//! streams differ from upstream `rand` but are deterministic per seed.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches rand's
    /// `Standard` distribution for `f64`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by widening multiply (Lemire, without
/// the rejection step — bias is < 2^-32 for the span sizes used here).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(below(rng, span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(below(rng, span + 1)) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = f64::sample_standard(rng) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = f64::sample_standard(rng) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing trait (auto-implemented for every `RngCore`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding from a single `u64` (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random selection / permutation on slices.
    pub trait SliceRandom {
        type Item;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (((rng.next_u64() as u128) * (self.len() as u128)) >> 64) as usize;
                self.get(i)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (((rng.next_u64() as u128) * ((i + 1) as u128)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
    }
}

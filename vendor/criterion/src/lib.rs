//! Offline shim for the subset of `criterion 0.5` used by this
//! workspace's benches.
//!
//! It keeps the authoring API (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`) but replaces the statistical machinery with a plain
//! timed loop: each benchmark runs a short calibration pass, then
//! `sample_size` timed samples, and prints mean/min per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { function: Some(function.to_string()), parameter: Some(parameter.to_string()) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: Some(s.to_string()), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: Some(s), parameter: None }
    }
}

/// Runs closures under timing; handed to benchmark functions.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    #[allow(clippy::disallowed_methods)] // benchmarking is wall-clock by definition
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level driver; collects groups and prints results to stdout.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup { _c: self, name, sample_size: 10 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_bench(&id.render(), 10, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.render()), self.sample_size, f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(&format!("{}/{}", self.name, id.render()), self.sample_size, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Calibrates an iteration count targeting ~20ms per sample (capped),
/// then takes `samples` timed samples and reports per-iteration time.
fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{label:<48} mean {:>12}  min {:>12}  ({samples} samples x {iters} iters)",
        fmt_time(mean),
        fmt_time(min)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Expands to a function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| b.iter(|| n * 2));
        group.finish();
        assert!(runs > 0, "benchmark closure must execute");
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(shim_group, noop_bench);

    #[test]
    fn macros_expand() {
        shim_group();
    }
}

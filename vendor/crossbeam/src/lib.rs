//! Offline shim for the subset of `crossbeam 0.8` used by this
//! workspace: bounded MPSC channels, implemented over `std::sync::mpsc`.
//!
//! Differences from real crossbeam that do not matter for our usage:
//! the channel is MPSC rather than MPMC (each `Receiver` here has a
//! single consumer, which is how `unistore::live` uses it).

pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    /// Sending half of a bounded channel (clonable).
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// Receiving half of a bounded channel.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError, TrySendError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = bounded::<u32>(1);
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}

//! Offline shim for the subset of `proptest 1.x` used by this workspace.
//!
//! Supported surface:
//!
//! * `proptest! { #[test] fn prop(x in STRATEGY, y: Type) { .. } }`
//! * strategies: integer/float ranges, regex-literal strings of the
//!   shape `atom{m,n}` (atom = `.` or a character class like `[a-z]`),
//!   tuples of strategies, `any::<T>()`, `collection::vec(strategy, len)`
//! * assertions: `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`
//!
//! Each property runs [`CASES`] deterministic cases; the per-case RNG is
//! seeded from the property's name and the case index, so failures
//! reproduce exactly across runs. There is no shrinking: the panic
//! message of a failing assertion is the counterexample report.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases per property.
pub const CASES: u64 = 128;

/// Deterministic per-case RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the property name and case index (FNV-1a over the name).
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        (((self.next_u64() as u128) * (span as u128)) >> 64) as u64
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.below(span + 1)) as $t
            }
        }
    )*};
}
impl_strategy_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_range_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
impl_strategy_range_float!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical "anything" strategy (`any::<T>()` / `x: T`
/// argument form). Integers and floats draw from their full bit range
/// (floats may produce infinities and NaN, as in real proptest).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix "interesting" values with raw bit patterns.
        match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.5,
            3 => -1.0e300,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String strategies from regex literals like `"[a-z]{1,6}"` or `".{0,24}"`.
///
/// Supported grammar: a sequence of `atom` or `atom{n}` or `atom{m,n}`,
/// where `atom` is `.`, a literal character, an escape (`\\.`), or a
/// character class `[a-z0-9_]` of literal chars and ranges.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_regex(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any char except newline.
    Dot,
    Lit(char),
    /// Flattened inclusive char ranges.
    Class(Vec<(char, char)>),
}

fn parse_regex(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '\\' => {
                i += 2;
                Atom::Lit(
                    *chars.get(i - 1).unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
                )
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1;
                Atom::Class(ranges)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repeat in {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repeat min"),
                    n.trim().parse().expect("bad repeat max"),
                ),
                None => {
                    let n: usize = body.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        out.push((atom, min, max));
    }
    out
}

/// Pool for `.`: printable ASCII plus a few multi-byte scalars, so byte-
/// level encoding properties see non-ASCII input. Never `\n`.
fn dot_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &['é', 'ß', 'λ', '中', '𝕌', '🦀', '\u{0301}', '\t'];
    if rng.below(8) == 0 {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    } else {
        char::from_u32(rng.below(95) as u32 + 0x20).unwrap()
    }
}

fn generate_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, min, max) in parse_regex(pattern) {
        assert!(min <= max, "bad repeat in {pattern:?}");
        let n = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..n {
            match &atom {
                Atom::Dot => out.push(dot_char(rng)),
                Atom::Lit(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u64 = ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in ranges {
                        let span = hi as u64 - lo as u64 + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick as u32).expect("class range"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `collection::vec(strategy, len)` — vectors of generated elements.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Expands argument bindings of a `proptest!` property, in order, from
/// the shared per-case RNG. Forms: `name in STRATEGY` and `name: Type`.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident: $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
    };
    ($rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary($rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// The property-test macro. Each contained function becomes one `#[test]`
/// running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // `prop_assume!` skips a case by returning from this
                // inner fn; assertion failures panic with the values.
                fn __proptest_case(__rng: &mut $crate::TestRng) {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    $body
                }
                for __case in 0..$crate::CASES {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    __proptest_case(&mut __rng);
                }
            }
        )*
    };
}

/// `assert!` with proptest's name (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($arg:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn regex_shapes() {
        let mut rng = TestRng::for_case("regex_shapes", 0);
        for _ in 0..200 {
            let s = Strategy::generate("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = Strategy::generate(".{0,16}", &mut rng);
            assert!(t.chars().count() <= 16);
            assert!(!t.contains('\n'));

            let fixed = Strategy::generate("x[0-9]{3}", &mut rng);
            assert_eq!(fixed.len(), 4);
            assert!(fixed.starts_with('x'));
        }
    }

    #[test]
    fn deterministic_cases() {
        let mut a = TestRng::for_case("p", 3);
        let mut b = TestRng::for_case("p", 3);
        let sa = Strategy::generate(".{0,24}", &mut a);
        let sb = Strategy::generate(".{0,24}", &mut b);
        assert_eq!(sa, sb);
    }

    proptest! {
        #[test]
        fn macro_mixed_params(a in 0u64..100, s in "[a-b]{2}", v: i64, pair in (0i64..4, 1usize..3)) {
            prop_assert!(a < 100);
            prop_assert_eq!(s.len(), 2);
            prop_assume!(v != i64::MIN);
            prop_assert!(v.abs() >= 0);
            prop_assert!(pair.0 < 4 && pair.1 >= 1);
        }

        #[test]
        fn macro_vec_strategy(
            xs in crate::collection::vec(any::<u64>(), 0..8),
            ys in crate::collection::vec((0i64..10, 0i64..10), 1..5),
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert!(!ys.is_empty() && ys.len() < 5);
        }
    }
}
